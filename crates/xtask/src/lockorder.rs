//! The `lock-order` static pass: an interprocedural approximation of the
//! runtime lockdep checker (`phoebe_common::sync::lockdep`), run over the
//! kernel crates by `cargo xtask lint-kernel`.
//!
//! Three things are checked / produced:
//!
//! 1. **Unranked locks.** Any raw `Mutex::new` / `RwLock::new`
//!    construction in a kernel crate is flagged: kernel locks must be
//!    built through `RankedMutex` / `RankedRwLock` (or `HybridLatch`,
//!    which wraps one) so they participate in the rank order. The only
//!    legitimate exceptions (e.g. an `std` mutex serializing an `mpsc`
//!    receiver that is never held across kernel locks) carry a
//!    `LINT-ALLOW(lock-order)` waiver.
//! 2. **Descending acquisition paths.** Each construction site declares
//!    `(Rank, class)`; the pass maps field names to rank candidates,
//!    replays every function body tracking live guard bindings (the same
//!    brace-depth model as the guard-across-await rule), and summarizes
//!    which classes each function acquires. Summaries are propagated to a
//!    fixpoint over a name-matched call graph, so a function that locks a
//!    high rank and then calls into a helper that locks a low rank is
//!    reported even though no single line shows both locks.
//! 3. **The discovered order**, as a dot-format graph (`held → acquired`
//!    edges, dashed when the acquisition is via a callee), written to
//!    `target/lockorder.dot` by `main` and uploaded as a CI artifact.
//!
//! The pass is deliberately conservative about names: a field name that
//! maps to several classes (`map`, `state`, `free` all repeat across
//! crates) is treated as the *set* of candidate classes, and a descent is
//! only reported when every interpretation descends — the held side uses
//! its minimum candidate rank, the acquired side its maximum. Anything
//! the name-matcher cannot prove is left to the runtime checker, which
//! sees exact lock identities. The two checkers share one rank table:
//! `Rank::ALL` from `phoebe-common`.

use crate::lint::{has_word, scan, waived, ScanLine, Violation};
use phoebe_common::sync::Rank;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Analysis over one set of kernel sources.
pub struct Analysis {
    /// (repo-relative path, violation) pairs, in file/line order.
    pub violations: Vec<(String, Violation)>,
    /// (repo-relative path, 1-based line) of each `LINT-ALLOW(lock-order)`
    /// waiver that suppressed something.
    pub used_waivers: Vec<(String, usize)>,
    /// Declared lock classes (name, rank), ascending by rank then name.
    pub classes: Vec<(String, Rank)>,
    /// The discovered order as a dot-format digraph.
    pub dot: String,
}

/// A declared lock class.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Class(usize);

/// One tracked live guard inside a function body.
struct Guard {
    binding: Option<String>,
    candidates: Vec<Class>,
    depth: i64,
    line: usize,
}

/// A lock acquisition or a call observed while walking a function body,
/// with a snapshot of the guards live at that point.
enum Event {
    Acquire { candidates: Vec<Class>, line: usize, held: Vec<(Vec<Class>, usize)> },
    Call { callee: String, line: usize, held: Vec<(Vec<Class>, usize)> },
}

struct FnBody {
    name: String,
    file: usize,
    events: Vec<Event>,
}

/// Method names never treated as kernel calls: ubiquitous std/trait
/// vocabulary whose name-match would drag unrelated summaries in (e.g.
/// every `.write()` is not the hybrid latch), plus the guard-producing
/// calls themselves and the condvar projections on ranked guards.
const CALL_DENYLIST: [&str; 40] = [
    "new",
    "default",
    "clone",
    "drop",
    "fmt",
    "len",
    "is_empty",
    "lock",
    "read",
    "write",
    "try_lock",
    "try_read",
    "try_write",
    "upgradable_read",
    "get",
    "get_mut",
    "insert",
    "remove",
    "push",
    "pop",
    "next",
    "send",
    "recv",
    "wait",
    "wait_for",
    "take",
    "iter",
    "contains",
    "extend",
    "clear",
    "load",
    "store",
    "swap",
    "min",
    "max",
    "flush",
    "sync",
    "run",
    "tick",
    "index",
];

const GUARD_CALLS: [&str; 6] =
    [".lock()", ".read()", ".write()", ".try_lock()", ".try_read()", ".try_write()"];

/// Run the pass over `files`: (repo-relative path, source text) pairs.
pub fn analyze(files: &[(String, String)]) -> Analysis {
    let scanned: Vec<Vec<ScanLine>> = files.iter().map(|(_, src)| scan(src)).collect();

    // ---- Pass 1: lock-class declarations ---------------------------------
    // `name: RankedMutex::new(Rank::X, "class", ...)` (or RankedRwLock /
    // let-bound), possibly spanning lines, maps field/binding `name` to the
    // class. `HybridLatch::new` construction sites map to the latch's fixed
    // class. `classes` is keyed by class name; `fields` maps a field name to
    // every class it might denote.
    let mut class_ids: BTreeMap<(u8, String), Class> = BTreeMap::new();
    let mut class_list: Vec<(String, Rank)> = Vec::new();
    let mut fields: HashMap<String, BTreeSet<Class>> = HashMap::new();
    let mut violations: Vec<(String, Violation)> = Vec::new();
    let mut used: Vec<(String, usize)> = Vec::new();

    let mut intern = |name: &str, rank: Rank, list: &mut Vec<(String, Rank)>| -> Class {
        *class_ids.entry((rank as u8, name.to_string())).or_insert_with(|| {
            list.push((name.to_string(), rank));
            Class(list.len() - 1)
        })
    };

    for (fi, (path, source)) in files.iter().enumerate() {
        let raw: Vec<&str> = source.lines().collect();
        let lines = &scanned[fi];
        for idx in 0..lines.len() {
            let code = lines[idx].code.as_str();
            let ranked = ["RankedMutex::new(", "RankedRwLock::new("]
                .iter()
                .find_map(|t| code.find(t).map(|p| (p, *t)));
            let latch = code.find("HybridLatch::new(");
            let (pos, class) = if let Some((pos, _)) = ranked {
                // Rank token and class string may sit on the next lines; the
                // raw (unblanked) window keeps the string literal visible.
                let window = raw[idx..raw.len().min(idx + 5)].join(" ");
                let Some((rank_name, after_rank)) = extract_rank(&window) else {
                    violations.push((
                        path.clone(),
                        Violation {
                            line: idx + 1,
                            rule: "lock-order",
                            msg: format!(
                                "{path}:{}: ranked lock constructed without a parseable \
                                 `Rank::<Name>` first argument",
                                idx + 1
                            ),
                        },
                    ));
                    continue;
                };
                let Some(rank) = Rank::ALL.iter().copied().find(|r| r.as_str() == rank_name) else {
                    violations.push((
                        path.clone(),
                        Violation {
                            line: idx + 1,
                            rule: "lock-order",
                            msg: format!(
                                "{path}:{}: `Rank::{rank_name}` is not a declared rank",
                                idx + 1
                            ),
                        },
                    ));
                    continue;
                };
                let class_name = extract_str(after_rank)
                    .map(str::to_string)
                    .unwrap_or_else(|| format!("<anon {path}:{}>", idx + 1));
                (pos, intern(&class_name, rank, &mut class_list))
            } else if let Some(pos) = latch {
                (pos, intern("latch.frame", Rank::FrameMeta, &mut class_list))
            } else {
                continue;
            };
            if let Some(field) = field_before(&code[..pos]) {
                fields.entry(field).or_default().insert(class);
            }
        }
    }

    // ---- Pass 2: unranked constructions + per-function event streams -----
    let mut bodies: Vec<FnBody> = Vec::new();
    for (fi, (path, _)) in files.iter().enumerate() {
        let lines = &scanned[fi];

        // Unranked raw locks. `has_word` is boundary-checked, so
        // `RankedMutex::new` (preceded by `d`) does not match.
        for (idx, line) in lines.iter().enumerate() {
            let code = line.code.as_str();
            if has_word(code, "Mutex::new") || has_word(code, "RwLock::new") {
                if let Some(w) = waived(lines, idx, "lock-order") {
                    used.push((path.clone(), w));
                } else {
                    violations.push((
                        path.clone(),
                        Violation {
                            line: idx + 1,
                            rule: "lock-order",
                            msg: format!(
                                "{path}:{}: raw lock constructed without a declared rank — \
                                 use `RankedMutex`/`RankedRwLock` with a `Rank`, or waive \
                                 with LINT-ALLOW(lock-order) if it provably never nests \
                                 with kernel locks",
                                idx + 1
                            ),
                        },
                    ));
                }
            }
        }

        bodies.extend(walk_functions(fi, lines, &fields));
    }

    // ---- Pass 3: fixpoint of transitive acquire-sets over the call graph -
    // A function's summary is the max-rank representative of each class it
    // may acquire, directly or through callees. Same-named functions are
    // merged (the name-matcher cannot tell `a.release()` from `b.release()`).
    let mut defined: HashMap<&str, Vec<usize>> = HashMap::new();
    for (bi, b) in bodies.iter().enumerate() {
        defined.entry(&b.name).or_default().push(bi);
    }
    let mut summary: HashMap<&str, BTreeSet<Class>> = HashMap::new();
    for b in &bodies {
        let set = summary.entry(&b.name).or_default();
        for ev in &b.events {
            if let Event::Acquire { candidates, .. } = ev {
                if let Some(rep) = max_rank_rep(candidates, &class_list) {
                    set.insert(rep);
                }
            }
        }
    }
    loop {
        let mut changed = false;
        for b in &bodies {
            let mut add = BTreeSet::new();
            for ev in &b.events {
                if let Event::Call { callee, .. } = ev {
                    if let Some(s) = summary.get(callee.as_str()) {
                        add.extend(s.iter().copied());
                    }
                }
            }
            let set = summary.entry(&b.name).or_default();
            let before = set.len();
            set.extend(add);
            changed |= set.len() != before;
        }
        if !changed {
            break;
        }
    }

    // ---- Pass 4: descending-path detection + order graph -----------------
    // Certainty rule: held side uses its *minimum* candidate rank, acquired
    // side its *maximum* — a report means every name interpretation
    // descends. Equal ranks are left to the runtime checker (self-nesting
    // and cross-class equal ranks are legal there).
    let mut direct_edges: BTreeSet<(Class, Class)> = BTreeSet::new();
    let mut call_edges: BTreeSet<(Class, Class)> = BTreeSet::new();
    let rank_of = |c: Class| class_list[c.0].1 as u8;
    for b in &bodies {
        let (path, _) = &files[b.file];
        let lines = &scanned[b.file];
        for ev in &b.events {
            match ev {
                Event::Acquire { candidates, line, held } => {
                    let Some(acq) = max_rank_rep(candidates, &class_list) else { continue };
                    for (held_cands, held_line) in held {
                        let Some(h) = min_rank_rep(held_cands, &class_list) else { continue };
                        direct_edges.insert((h, acq));
                        if rank_of(h) > rank_of(acq) {
                            report_descent(
                                path,
                                lines,
                                *line,
                                &class_list,
                                h,
                                *held_line,
                                acq,
                                None,
                                &mut violations,
                                &mut used,
                            );
                        }
                    }
                }
                Event::Call { callee, line, held } => {
                    if held.is_empty() {
                        continue;
                    }
                    let Some(acqs) = summary.get(callee.as_str()) else { continue };
                    for acq in acqs {
                        for (held_cands, held_line) in held {
                            let Some(h) = min_rank_rep(held_cands, &class_list) else { continue };
                            call_edges.insert((h, *acq));
                            if rank_of(h) > rank_of(*acq) {
                                report_descent(
                                    path,
                                    lines,
                                    *line,
                                    &class_list,
                                    h,
                                    *held_line,
                                    *acq,
                                    Some(callee),
                                    &mut violations,
                                    &mut used,
                                );
                            }
                        }
                    }
                }
            }
        }
    }
    violations.sort_by(|a, b| (a.0.as_str(), a.1.line).cmp(&(b.0.as_str(), b.1.line)));
    violations.dedup_by(|a, b| a.0 == b.0 && a.1.line == b.1.line && a.1.msg == b.1.msg);
    used.sort();
    used.dedup();

    let dot = render_dot(&class_list, &direct_edges, &call_edges);
    Analysis { violations, used_waivers: used, classes: class_list, dot }
}

#[allow(clippy::too_many_arguments)]
fn report_descent(
    path: &str,
    lines: &[ScanLine],
    line: usize,
    classes: &[(String, Rank)],
    held: Class,
    held_line: usize,
    acq: Class,
    via: Option<&str>,
    violations: &mut Vec<(String, Violation)>,
    used: &mut Vec<(String, usize)>,
) {
    if let Some(w) = waived(lines, line - 1, "lock-order") {
        used.push((path.to_string(), w));
        return;
    }
    let (hn, hr) = &classes[held.0];
    let (an, ar) = &classes[acq.0];
    let how = match via {
        Some(callee) => format!("call to `{callee}()` may acquire \"{an}\" ({ar})"),
        None => format!("acquires \"{an}\" ({ar})"),
    };
    violations.push((
        path.to_string(),
        Violation {
            line,
            rule: "lock-order",
            msg: format!(
                "{path}:{line}: {how} while the guard on \"{hn}\" ({hr}) from line \
                 {held_line} is still live — ranks must not descend \
                 (see DESIGN.md \"Lock ordering\")"
            ),
        },
    ));
}

/// Walk one file's functions, producing acquisition/call event streams.
fn walk_functions(
    file: usize,
    lines: &[ScanLine],
    fields: &HashMap<String, BTreeSet<Class>>,
) -> Vec<FnBody> {
    let mut out: Vec<FnBody> = Vec::new();
    let mut depth: i64 = 0;
    // Innermost-last stack of (body index in `out`, depth the body closes at).
    let mut fn_stack: Vec<(usize, i64)> = Vec::new();
    let mut pending_fn: Option<String> = None;
    let mut guards: Vec<Guard> = Vec::new();

    for (idx, line) in lines.iter().enumerate() {
        let n = idx + 1;
        let code = line.code.as_str();

        if let Some(name) = fn_name(code) {
            pending_fn = Some(name);
        } else if pending_fn.is_some() && code.contains(';') && !code.contains('{') {
            pending_fn = None; // trait-method signature without a body
        }

        // Early releases.
        guards.retain(|g| {
            g.binding.as_ref().is_none_or(|b| {
                !code.contains(&format!("drop({b})")) && !code.contains(&format!("drop(&{b})"))
            })
        });

        // Gather this line's items — braces, guard acquisitions, calls —
        // with their byte offsets, then process them in source order so a
        // single-line body (`fn f() { self.x.lock() }`) still attributes
        // its events to the right function and scope.
        enum Item {
            Open,
            Close,
            Acquire { candidates: Vec<Class>, bindable: bool },
            Call(String),
        }
        let mut items: Vec<(usize, Item)> = Vec::new();
        for (off, c) in code.char_indices() {
            match c {
                '{' => items.push((off, Item::Open)),
                '}' => items.push((off, Item::Close)),
                _ => {}
            }
        }
        for call in GUARD_CALLS {
            let mut start = 0;
            while let Some(p) = code[start..].find(call) {
                let at = start + p;
                if let Some(recv) = receiver_before(&code[..at]) {
                    if let Some(cands) = fields.get(&recv) {
                        // A chained method (`.read().clone()`) consumes the
                        // guard within the statement — not bindable.
                        items.push((
                            at,
                            Item::Acquire {
                                candidates: cands.iter().copied().collect(),
                                bindable: !code[at + call.len()..].starts_with('.'),
                            },
                        ));
                    }
                }
                start = at + call.len();
            }
        }
        for (off, callee) in call_names(code) {
            items.push((off, Item::Call(callee)));
        }
        items.sort_by_key(|(off, _)| *off);

        let binding_name = crate::lint::guard_binding(code);
        for (_, item) in items {
            match item {
                Item::Open => {
                    depth += 1;
                    if let Some(name) = pending_fn.take() {
                        out.push(FnBody { name, file, events: Vec::new() });
                        fn_stack.push((out.len() - 1, depth - 1));
                    }
                }
                Item::Close => {
                    depth -= 1;
                    guards.retain(|g| g.depth < depth + 1);
                    while fn_stack.last().is_some_and(|(_, d)| *d >= depth) {
                        fn_stack.pop();
                    }
                }
                Item::Acquire { candidates, bindable } => {
                    let held = snapshot(&guards);
                    if let Some((bi, _)) = fn_stack.last() {
                        out[*bi].events.push(Event::Acquire {
                            candidates: candidates.clone(),
                            line: n,
                            held,
                        });
                    }
                    if bindable && binding_name.is_some() {
                        // One guard entry per line; a tuple binding of two
                        // guards merges their candidate sets.
                        if let Some(g) = guards.last_mut().filter(|g| g.line == n) {
                            g.candidates.extend(candidates);
                        } else {
                            guards.push(Guard {
                                binding: binding_name.clone(),
                                candidates,
                                depth,
                                line: n,
                            });
                        }
                    }
                }
                Item::Call(callee) => {
                    if let Some((bi, _)) = fn_stack.last() {
                        out[*bi].events.push(Event::Call {
                            callee,
                            line: n,
                            held: snapshot(&guards),
                        });
                    }
                }
            }
        }
    }
    out
}

/// The live-guard snapshot recorded with each event.
fn snapshot(guards: &[Guard]) -> Vec<(Vec<Class>, usize)> {
    guards.iter().map(|g| (g.candidates.clone(), g.line)).collect()
}

/// `fn <name>` on this line (skipping `fn` inside types like `fn()` —
/// good enough: a following identifier is required).
fn fn_name(code: &str) -> Option<String> {
    let mut start = 0;
    while let Some(p) = code[start..].find("fn ") {
        let at = start + p;
        let bounded = at == 0
            || !code[..at].chars().next_back().is_some_and(|c| c.is_alphanumeric() || c == '_');
        if bounded {
            let rest = code[at + 3..].trim_start();
            let name: String =
                rest.chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
            if !name.is_empty() {
                return Some(name);
            }
        }
        start = at + 3;
    }
    None
}

/// The `Rank::<Name>` token in a declaration window, and the text after it.
fn extract_rank(window: &str) -> Option<(&str, &str)> {
    let p = window.find("Rank::")?;
    let rest = &window[p + "Rank::".len()..];
    let end = rest.find(|c: char| !c.is_alphanumeric() && c != '_').unwrap_or(rest.len());
    (end > 0).then(|| (&rest[..end], &rest[end..]))
}

/// The first `"..."` literal in the window remainder (the class name).
fn extract_str(after: &str) -> Option<&str> {
    let open = after.find('"')?;
    let rest = &after[open + 1..];
    let close = rest.find('"')?;
    Some(&rest[..close])
}

/// The field/binding name a construction is assigned to: the identifier
/// before a trailing `:` (struct literal / let-with-type) or `=`.
fn field_before(prefix: &str) -> Option<String> {
    let t = prefix.trim_end();
    let t = t.strip_suffix(':').or_else(|| t.strip_suffix('=')).map(str::trim_end)?;
    let name: String = t
        .chars()
        .rev()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect::<String>()
        .chars()
        .rev()
        .collect();
    // `let mut x =` leaves `x`; a struct field leaves the field name.
    (!name.is_empty() && !name.chars().next().is_some_and(|c| c.is_numeric())).then_some(name)
}

/// The receiver identifier of a method call: the last path segment before
/// the dot, skipping one balanced `(...)` group (so `self.field().lock()`
/// resolves to the accessor name, which matches the field it exposes).
fn receiver_before(prefix: &str) -> Option<String> {
    let mut chars: &str = prefix;
    if chars.ends_with(')') {
        let bytes = chars.as_bytes();
        let mut depth = 0i32;
        let mut cut = None;
        for i in (0..bytes.len()).rev() {
            match bytes[i] {
                b')' => depth += 1,
                b'(' => {
                    depth -= 1;
                    if depth == 0 {
                        cut = Some(i);
                        break;
                    }
                }
                _ => {}
            }
        }
        chars = &chars[..cut?];
    }
    let name: String = chars
        .chars()
        .rev()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect::<String>()
        .chars()
        .rev()
        .collect();
    (!name.is_empty() && !name.chars().next().is_some_and(|c| c.is_numeric())).then_some(name)
}

/// Plausible kernel-function call sites on a line: `(identifier start
/// offset, name)` for each `ident(` with a lowercase identifier that is
/// not a keyword, macro, guard call, or denylisted ubiquitous method name.
fn call_names(code: &str) -> Vec<(usize, String)> {
    const KEYWORDS: [&str; 10] =
        ["if", "while", "match", "for", "return", "fn", "loop", "move", "in", "else"];
    let bytes = code.as_bytes();
    let mut out: Vec<(usize, String)> = Vec::new();
    for i in 1..bytes.len() {
        if bytes[i] != b'(' {
            continue;
        }
        let name: String = code[..i]
            .chars()
            .rev()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect::<String>()
            .chars()
            .rev()
            .collect();
        let ok = !name.is_empty()
            && name.chars().next().is_some_and(|c| c.is_lowercase() || c == '_')
            && !KEYWORDS.contains(&name.as_str())
            && !CALL_DENYLIST.contains(&name.as_str());
        if ok {
            out.push((i - name.len(), name));
        }
    }
    out
}

/// The candidate with the highest rank (acquired-side representative).
fn max_rank_rep(cands: &[Class], classes: &[(String, Rank)]) -> Option<Class> {
    cands.iter().copied().max_by_key(|c| classes[c.0].1 as u8)
}

/// The candidate with the lowest rank (held-side representative).
fn min_rank_rep(cands: &[Class], classes: &[(String, Rank)]) -> Option<Class> {
    cands.iter().copied().min_by_key(|c| classes[c.0].1 as u8)
}

fn render_dot(
    classes: &[(String, Rank)],
    direct: &BTreeSet<(Class, Class)>,
    via_call: &BTreeSet<(Class, Class)>,
) -> String {
    let mut s = String::from("digraph lockorder {\n  rankdir=TB;\n  node [shape=box];\n");
    let mut order: Vec<usize> = (0..classes.len()).collect();
    order.sort_by_key(|&i| (classes[i].1 as u8, classes[i].0.clone()));
    for i in order {
        let (name, rank) = &classes[i];
        s.push_str(&format!("  c{i} [label=\"{name}\\n{rank} ({})\"];\n", *rank as u8));
    }
    for (a, b) in direct {
        s.push_str(&format!("  c{} -> c{};\n", a.0, b.0));
    }
    for (a, b) in via_call {
        if !direct.contains(&(*a, *b)) {
            s.push_str(&format!("  c{} -> c{} [style=dashed];\n", a.0, b.0));
        }
    }
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Analysis {
        analyze(&[("t.rs".to_string(), src.to_string())])
    }

    fn rules(a: &Analysis) -> Vec<&str> {
        a.violations.iter().map(|(_, v)| v.rule).collect()
    }

    #[test]
    fn seeded_unranked_lock_fails_and_waiver_suppresses() {
        let src = "fn f() { let m = Mutex::new(0); }\n";
        let a = run(src);
        assert_eq!(rules(&a), ["lock-order"]);
        assert!(a.violations[0].1.msg.contains("without a declared rank"));

        let src = "fn f() { let m = Mutex::new(0); } // LINT-ALLOW(lock-order): test fixture\n";
        let a = run(src);
        assert!(a.violations.is_empty());
        assert_eq!(a.used_waivers, [("t.rs".to_string(), 1)]);
    }

    #[test]
    fn ranked_constructions_are_not_flagged_and_declare_classes() {
        let src = "\
struct S { a: RankedMutex<u64>, b: RankedRwLock<u64> }
fn mk() -> S {
    S {
        a: RankedMutex::new(Rank::Db, \"t.a\", 0),
        b: RankedRwLock::new(
            Rank::Notify,
            \"t.b\",
            0,
        ),
    }
}
";
        let a = run(src);
        assert!(a.violations.is_empty(), "{:?}", a.violations);
        assert_eq!(a.classes, [("t.a".to_string(), Rank::Db), ("t.b".to_string(), Rank::Notify)]);
    }

    #[test]
    fn seeded_direct_descent_fails_with_both_class_names() {
        let src = "\
fn decls() {
    hi: RankedMutex::new(Rank::Notify, \"t.hi\", 0);
    lo: RankedMutex::new(Rank::Db, \"t.lo\", 0);
}
impl S {
    fn bad(&self) {
        let g = self.hi.lock();
        let h = self.lo.lock();
    }
}
";
        let a = run(src);
        assert_eq!(rules(&a), ["lock-order"]);
        let msg = &a.violations[0].1.msg;
        assert!(msg.contains("t.lo") && msg.contains("t.hi"), "{msg}");
        assert!(msg.contains("Db") && msg.contains("Notify"), "{msg}");
    }

    #[test]
    fn ascending_and_scoped_acquisitions_pass() {
        let src = "\
fn decls() {
    lo: RankedMutex::new(Rank::Db, \"t.lo\", 0);
    hi: RankedMutex::new(Rank::Notify, \"t.hi\", 0);
}
impl S {
    fn ascending(&self) {
        let g = self.lo.lock();
        let h = self.hi.lock();
    }
    fn scoped(&self) {
        { let g = self.hi.lock(); }
        let h = self.lo.lock();
    }
    fn dropped(&self) {
        let g = self.hi.lock();
        drop(g);
        let h = self.lo.lock();
    }
}
";
        let a = run(src);
        assert!(a.violations.is_empty(), "{:?}", a.violations);
    }

    #[test]
    fn seeded_interprocedural_descent_is_found_via_call_graph() {
        let src = "\
fn decls() {
    lo: RankedMutex::new(Rank::Db, \"t.lo\", 0);
    hi: RankedMutex::new(Rank::Notify, \"t.hi\", 0);
}
impl S {
    fn helper_inner(&self) {
        let g = self.lo.lock();
    }
    fn helper_outer(&self) {
        self.helper_inner();
    }
    fn bad(&self) {
        let g = self.hi.lock();
        self.helper_outer();
    }
}
";
        let a = run(src);
        assert_eq!(rules(&a), ["lock-order"]);
        let msg = &a.violations[0].1.msg;
        assert!(msg.contains("helper_outer") && msg.contains("t.lo"), "{msg}");
    }

    #[test]
    fn call_descent_waiver_suppresses_and_is_recorded() {
        let src = "\
fn decls() {
    lo: RankedMutex::new(Rank::Db, \"t.lo\", 0);
    hi: RankedMutex::new(Rank::Notify, \"t.hi\", 0);
}
impl S {
    fn helper(&self) { let g = self.lo.lock(); }
    fn bad(&self) {
        let g = self.hi.lock();
        // LINT-ALLOW(lock-order): fixture — deliberate inversion
        self.helper();
    }
}
";
        let a = run(src);
        assert!(a.violations.is_empty(), "{:?}", a.violations);
        assert_eq!(a.used_waivers, [("t.rs".to_string(), 9)]);
    }

    #[test]
    fn ambiguous_field_names_are_judged_conservatively() {
        // `state` maps to both Db(10) and Notify(100); holding it must not
        // trip acquisitions between those ranks (min-rank on the held side),
        // and acquiring it under a mid-rank guard must not fire either
        // (max-rank on the acquired side).
        let src = "\
fn decls() {
    state: RankedMutex::new(Rank::Db, \"t.s1\", 0);
    state: RankedMutex::new(Rank::Notify, \"t.s2\", 0);
    mid: RankedMutex::new(Rank::WalSlot, \"t.mid\", 0);
}
impl S {
    fn a(&self) {
        let g = self.state.lock();
        let h = self.mid.lock();
    }
    fn b(&self) {
        let g = self.mid.lock();
        let h = self.state.lock();
    }
}
";
        let a = run(src);
        assert!(a.violations.is_empty(), "{:?}", a.violations);
    }

    #[test]
    fn try_acquisitions_still_rank_check_descents() {
        // try_* skips runtime blocking checks but a statically-visible
        // descent through a *blocking* call under a try-held guard is the
        // same hazard; the static pass treats the held side uniformly.
        let src = "\
fn decls() {
    lo: RankedMutex::new(Rank::Db, \"t.lo\", 0);
    hi: RankedMutex::new(Rank::Notify, \"t.hi\", 0);
}
impl S {
    fn bad(&self) {
        let g = self.hi.try_lock();
        let h = self.lo.lock();
    }
}
";
        let a = run(src);
        assert_eq!(rules(&a), ["lock-order"]);
    }

    #[test]
    fn hybrid_latch_constructions_map_to_the_frame_class() {
        let src = "\
fn decls() {
    latch: HybridLatch::new(Page::Free);
    ctl: RankedMutex::new(Rank::BufferPool, \"t.ctl\", 0);
}
impl S {
    fn bad(&self) {
        let g = self.ctl.lock();
        let h = self.latch.write();
    }
}
";
        let a = run(src);
        assert_eq!(rules(&a), ["lock-order"]);
        assert!(a.violations[0].1.msg.contains("latch.frame"));
    }

    #[test]
    fn dot_graph_lists_classes_and_edges() {
        let src = "\
fn decls() {
    lo: RankedMutex::new(Rank::Db, \"t.lo\", 0);
    hi: RankedMutex::new(Rank::Notify, \"t.hi\", 0);
}
impl S {
    fn ok(&self) {
        let g = self.lo.lock();
        let h = self.hi.lock();
    }
}
";
        let a = run(src);
        assert!(a.dot.contains("digraph lockorder"));
        assert!(a.dot.contains("t.lo\\nDb (10)"), "{}", a.dot);
        assert!(a.dot.contains("t.hi\\nNotify (100)"));
        assert!(a.dot.contains("c0 -> c1"), "{}", a.dot);
    }
}
