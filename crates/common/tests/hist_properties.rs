//! Property tests for the latency histogram: merging per-worker shards
//! must preserve totals and keep quantiles sane — the invariant behind
//! `Database::stats()` aggregating in O(workers).

use phoebe_common::hist::{HistogramSnapshot, LatencyHistogram};
use proptest::prelude::*;

fn snapshot_of(samples: &[u64]) -> HistogramSnapshot {
    let h = LatencyHistogram::default();
    for &v in samples {
        h.record(v);
    }
    let mut s = HistogramSnapshot::default();
    h.merge_into(&mut s);
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn merge_preserves_totals(
        a in proptest::collection::vec(0u64..1_000_000_000, 0..200),
        b in proptest::collection::vec(0u64..1_000_000_000, 0..200),
    ) {
        let (sa, sb) = (snapshot_of(&a), snapshot_of(&b));
        let mut m = sa.clone();
        m.merge(&sb);
        prop_assert_eq!(m.count(), (a.len() + b.len()) as u64);
        prop_assert_eq!(m.sum_ns(), sa.sum_ns() + sb.sum_ns());
        prop_assert_eq!(m.max_ns(), sa.max_ns().max(sb.max_ns()));
    }

    #[test]
    fn merge_is_commutative(
        a in proptest::collection::vec(0u64..u64::MAX / 2, 0..100),
        b in proptest::collection::vec(0u64..u64::MAX / 2, 0..100),
    ) {
        let (sa, sb) = (snapshot_of(&a), snapshot_of(&b));
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(ab.p50(), ba.p50());
        prop_assert_eq!(ab.p99(), ba.p99());
        prop_assert_eq!(ab.count(), ba.count());
        prop_assert_eq!(ab.sum_ns(), ba.sum_ns());
    }

    #[test]
    fn quantiles_stay_monotone_and_within_range(
        samples in proptest::collection::vec(1u64..1_000_000_000, 1..400),
    ) {
        let s = snapshot_of(&samples);
        let (p50, p95, p99) = (s.p50(), s.p95(), s.p99());
        prop_assert!(p50 <= p95 && p95 <= p99, "p50={} p95={} p99={}", p50, p95, p99);
        // Quantiles are bucket lower bounds: never above the true max, and
        // never below the largest lower bound under the true min.
        prop_assert!(p99 <= s.max_ns());
        let min = *samples.iter().min().unwrap();
        prop_assert!(p50 <= s.max_ns() && s.max_ns() >= min);
    }

    #[test]
    fn delta_since_merge_roundtrip(
        early in proptest::collection::vec(0u64..1_000_000, 1..100),
        late in proptest::collection::vec(0u64..1_000_000, 1..100),
    ) {
        // Recording `early` then `late` into one histogram and subtracting
        // the first snapshot must report exactly the late interval's count.
        let h = LatencyHistogram::default();
        for &v in &early {
            h.record(v);
        }
        let mut first = HistogramSnapshot::default();
        h.merge_into(&mut first);
        for &v in &late {
            h.record(v);
        }
        let mut second = HistogramSnapshot::default();
        h.merge_into(&mut second);
        let d = second.delta_since(&first);
        prop_assert_eq!(d.count(), late.len() as u64);
        prop_assert_eq!(d.sum_ns(), late.iter().sum::<u64>());
    }
}
