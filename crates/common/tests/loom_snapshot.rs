//! Loom models for the lock-free snapshot list (`phoebe_common::snapshot`).
//!
//! Run with `scripts/loom.sh` or
//! `RUSTFLAGS="--cfg loom" cargo test -p phoebe-common --test loom_snapshot`.
#![cfg(loom)]

use loom::sync::Arc;
use phoebe_common::SnapshotList;

/// A lock-free read concurrent with a publish sees either the old or the
/// new snapshot in full — never a partial state — and the publish is
/// never lost.
#[test]
fn read_during_publish_sees_old_or_new() {
    loom::model(|| {
        let list = Arc::new(SnapshotList::new(vec![1u64]));
        let writer = {
            let list = Arc::clone(&list);
            loom::thread::spawn(move || {
                list.push(2);
            })
        };
        let seen = list.load().to_vec();
        assert!(
            seen == [1] || seen == [1, 2],
            "reader saw a snapshot that was never published: {seen:?}"
        );
        writer.join().unwrap();
        assert_eq!(list.load(), &[1, 2]);
    });
}

/// Two concurrent publishers serialize on the retired-list mutex: both
/// updates land (no lost update) and the old snapshots stay reclaimable.
#[test]
fn concurrent_publishers_do_not_lose_updates() {
    loom::model(|| {
        let list = Arc::new(SnapshotList::new(vec![0u64]));
        let writers: Vec<_> = [10u64, 20]
            .into_iter()
            .map(|v| {
                let list = Arc::clone(&list);
                loom::thread::spawn(move || {
                    list.push(v);
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        let mut items = list.load().to_vec();
        items.sort_unstable();
        assert_eq!(items, [0, 10, 20], "a publish was lost");
    });
}
