//! Loom models for the lockdep wait-for graph
//! (`phoebe_common::sync::lockdep::graph`).
//!
//! The per-thread held-rank stack needs no model (it is thread-local by
//! construction); the cross-thread state is the wait-for edge set, and
//! these models check it is race-free: concurrent `record_edge` calls
//! never corrupt the set, never let a cycle slip in, and never lose an
//! acyclic edge.
//!
//! Run with `scripts/loom.sh` or
//! `RUSTFLAGS="--cfg loom" cargo test -p phoebe-common --features lockdep --test loom_lockdep`.
#![cfg(all(loom, feature = "lockdep"))]

use loom::sync::Arc;
use phoebe_common::sync::lockdep::graph::WaitForGraph;
use std::panic::Location;

fn site() -> &'static Location<'static> {
    Location::caller()
}

/// Two threads racing to record opposite edges (the classic A→B / B→A
/// inversion seen from two threads): in every interleaving exactly one
/// edge lands and the other is rejected as a cycle — they can never both
/// insert.
#[test]
fn opposing_edges_never_both_insert() {
    loom::model(|| {
        let g = Arc::new(WaitForGraph::new());
        let t = {
            let g = Arc::clone(&g);
            loom::thread::spawn(move || g.record_edge(1, 2, site()).is_ok())
        };
        let here_ok = g.record_edge(2, 1, site()).is_ok();
        let there_ok = t.join().unwrap();
        assert!(
            here_ok != there_ok,
            "exactly one of the opposing edges must land (got here={here_ok}, there={there_ok})"
        );
        assert_eq!(g.edge_count(), 1);
    });
}

/// Two threads recording disjoint chain links A→B and B→C: both always
/// land regardless of interleaving, and the closing link C→A is then
/// rejected with the full chain — the three-lock cycle is caught no
/// matter which thread published its edge first.
#[test]
fn concurrent_chain_links_all_land_and_closing_edge_is_rejected() {
    loom::model(|| {
        let g = Arc::new(WaitForGraph::new());
        let t = {
            let g = Arc::clone(&g);
            loom::thread::spawn(move || g.record_edge(1, 2, site()))
        };
        g.record_edge(2, 3, site()).expect("disjoint edge must insert");
        t.join().unwrap().expect("disjoint edge must insert");
        assert_eq!(g.edge_count(), 2);

        let err = g.record_edge(3, 1, site()).expect_err("closing edge must be rejected");
        let chain: Vec<u32> = err.chain.iter().map(|(c, _)| *c).collect();
        assert_eq!(chain, [1, 2, 3], "chain reports the existing path to → … → from");
        assert_eq!(g.edge_count(), 2, "rejected edge must not be inserted");
    });
}

/// Idempotence under contention: both threads record the *same* edge;
/// both succeed and the set holds it once.
#[test]
fn duplicate_edges_dedupe_under_contention() {
    loom::model(|| {
        let g = Arc::new(WaitForGraph::new());
        let t = {
            let g = Arc::clone(&g);
            loom::thread::spawn(move || g.record_edge(1, 2, site()))
        };
        g.record_edge(1, 2, site()).expect("same edge is idempotent");
        t.join().unwrap().expect("same edge is idempotent");
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.edge_pairs(), [(1, 2)]);
    });
}
