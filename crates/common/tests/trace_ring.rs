//! Flight-recorder ring properties: wraparound keeps the newest events,
//! concurrent emit under capacity loses nothing, the disabled tracer
//! records nothing, and a drain racing live writers never yields a torn
//! event.

use phoebe_common::trace::{EventKind, Tracer};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

#[test]
fn wraparound_overwrites_oldest_keeps_newest() {
    // One worker ring (unused) plus the external ring this thread hits.
    let tracer = Tracer::new(1, 8);
    for i in 0..20u64 {
        tracer.instant(EventKind::TxnBegin, 0, i, 0);
    }
    let drained = tracer.drain();
    let (_, events) = &drained[tracer.workers()];
    // Capacity 8: only the newest 8 of 20 survive, oldest first.
    assert_eq!(events.len(), 8);
    let got: Vec<u64> = events.iter().map(|e| e.a).collect();
    assert_eq!(got, (12..20).collect::<Vec<u64>>());
    assert_eq!(tracer.total_emitted(), 20);
}

#[test]
fn concurrent_emit_under_capacity_loses_nothing() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 256;
    // All plain threads share the external ring; keep total under capacity.
    let tracer = Arc::new(Tracer::new(1, 4096));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let tracer = Arc::clone(&tracer);
            thread::spawn(move || {
                for i in 0..PER_THREAD {
                    tracer.instant(EventKind::TxnCommit, t as u32, (t << 32) | i, 0);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let drained = tracer.drain();
    let (_, events) = &drained[tracer.workers()];
    assert_eq!(events.len(), (THREADS * PER_THREAD) as usize);
    // Every thread's full sequence must be present exactly once.
    for t in 0..THREADS {
        let mut mine: Vec<u64> =
            events.iter().filter(|e| e.a >> 32 == t).map(|e| e.a & u32::MAX as u64).collect();
        mine.sort_unstable();
        assert_eq!(mine, (0..PER_THREAD).collect::<Vec<u64>>(), "thread {t} lost events");
    }
}

#[test]
fn disabled_tracer_emits_nothing_anywhere() {
    let tracer = Tracer::disabled();
    assert!(!tracer.enabled());
    tracer.instant(EventKind::Yield, 3, 1, 2);
    let start = tracer.span_begin();
    assert_eq!(start, 0);
    tracer.span_end(EventKind::TaskPoll, 0, start, 0);
    tracer.span_dur(EventKind::LockWait, 0, 1234, 5);
    drop(tracer.span_guard(EventKind::BufferFault, 0, 9));
    assert_eq!(tracer.total_emitted(), 0);
    assert!(tracer.drain().is_empty());
    // Export still yields a syntactically complete document.
    let json = tracer.export_chrome_json();
    assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
}

#[test]
fn drain_racing_live_writers_never_yields_torn_events() {
    let tracer = Arc::new(Tracer::new(1, 64));
    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let tracer = Arc::clone(&tracer);
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) {
                // Invariant under test: a == b in every emitted event, so a
                // torn read (half old slot, half new) is detectable.
                tracer.instant(EventKind::QueueDepth, 0, i, i);
                i += 1;
            }
        })
    };
    for _ in 0..200 {
        for (_, events) in tracer.drain() {
            for ev in &events {
                assert_eq!(ev.a, ev.b, "torn event surfaced from drain");
                assert_eq!(ev.kind(), Some(EventKind::QueueDepth));
            }
        }
    }
    stop.store(true, Ordering::Relaxed);
    writer.join().unwrap();
    assert!(tracer.total_emitted() > 0);
}
