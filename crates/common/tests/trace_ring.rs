//! Flight-recorder ring properties: wraparound keeps the newest events,
//! concurrent emit under capacity loses nothing, the disabled tracer
//! records nothing, and a drain racing live writers never yields a torn
//! event.

use phoebe_common::trace::{EventKind, Tracer};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

#[test]
fn wraparound_overwrites_oldest_keeps_newest() {
    // One worker ring (unused) plus the external ring this thread hits.
    let tracer = Tracer::new(1, 8);
    for i in 0..20u64 {
        tracer.instant(EventKind::TxnBegin, 0, i, 0);
    }
    let drained = tracer.drain();
    let (_, events) = &drained[tracer.workers()];
    // Capacity 8: only the newest 8 of 20 survive, oldest first.
    assert_eq!(events.len(), 8);
    let got: Vec<u64> = events.iter().map(|e| e.a).collect();
    assert_eq!(got, (12..20).collect::<Vec<u64>>());
    assert_eq!(tracer.total_emitted(), 20);
}

#[test]
fn concurrent_emit_under_capacity_loses_nothing() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 256;
    // All plain threads share the external ring; keep total under capacity.
    let tracer = Arc::new(Tracer::new(1, 4096));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let tracer = Arc::clone(&tracer);
            thread::spawn(move || {
                for i in 0..PER_THREAD {
                    tracer.instant(EventKind::TxnCommit, t as u32, (t << 32) | i, 0);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let drained = tracer.drain();
    let (_, events) = &drained[tracer.workers()];
    assert_eq!(events.len(), (THREADS * PER_THREAD) as usize);
    // Every thread's full sequence must be present exactly once.
    for t in 0..THREADS {
        let mut mine: Vec<u64> =
            events.iter().filter(|e| e.a >> 32 == t).map(|e| e.a & u32::MAX as u64).collect();
        mine.sort_unstable();
        assert_eq!(mine, (0..PER_THREAD).collect::<Vec<u64>>(), "thread {t} lost events");
    }
}

#[test]
fn disabled_tracer_emits_nothing_anywhere() {
    let tracer = Tracer::disabled();
    assert!(!tracer.enabled());
    tracer.instant(EventKind::Yield, 3, 1, 2);
    let start = tracer.span_begin();
    assert_eq!(start, 0);
    tracer.span_end(EventKind::TaskPoll, 0, start, 0);
    tracer.span_dur(EventKind::LockWait, 0, 1234, 5);
    drop(tracer.span_guard(EventKind::BufferFault, 0, 9));
    assert_eq!(tracer.total_emitted(), 0);
    assert!(tracer.drain().is_empty());
    // Export still yields a syntactically complete document.
    let json = tracer.export_chrome_json();
    assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
}

#[test]
fn drain_racing_live_writers_never_yields_torn_events() {
    let tracer = Arc::new(Tracer::new(1, 64));
    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let tracer = Arc::clone(&tracer);
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) {
                // Invariant under test: a == b in every emitted event, so a
                // torn read (half old slot, half new) is detectable.
                tracer.instant(EventKind::QueueDepth, 0, i, i);
                i += 1;
            }
        })
    };
    for _ in 0..200 {
        for (_, events) in tracer.drain() {
            for ev in &events {
                assert_eq!(ev.a, ev.b, "torn event surfaced from drain");
                assert_eq!(ev.kind(), Some(EventKind::QueueDepth));
            }
        }
    }
    stop.store(true, Ordering::Relaxed);
    writer.join().unwrap();
    assert!(tracer.total_emitted() > 0);
}

/// The `/trace` endpoint property: snapshotting while multiple writers
/// emit full tilt must never yield a torn *or duplicated* event within a
/// snapshot, and must leave the rings consumable — a drain after the
/// race still returns a well-formed newest-window.
#[test]
fn live_snapshot_under_writers_is_untorn_unduplicated_and_leaves_rings_usable() {
    const WRITERS: u64 = 4;
    let tracer = Arc::new(Tracer::new(1, 128));
    let stop = Arc::new(AtomicBool::new(false));
    let writers: Vec<_> = (0..WRITERS)
        .map(|t| {
            let tracer = Arc::clone(&tracer);
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    // Tear detector: `b` is a function of `a`, and `a`
                    // encodes (writer, seq) so duplicates are detectable.
                    let a = (t << 48) | i;
                    tracer.instant(EventKind::QueueDepth, t as u32, a, a.wrapping_mul(31));
                    i += 1;
                }
                i
            })
        })
        .collect();

    for _ in 0..300 {
        for (_, events) in tracer.drain() {
            let mut seen = std::collections::HashSet::with_capacity(events.len());
            for ev in &events {
                assert_eq!(ev.b, ev.a.wrapping_mul(31), "torn event in live snapshot");
                assert!(seen.insert(ev.a), "event {:#x} duplicated within one snapshot", ev.a);
            }
            // Within one writer's events the sequence must be strictly
            // increasing: overwrite-on-wrap may drop a prefix, never
            // reorder or replay.
            for t in 0..WRITERS {
                let mine: Vec<u64> = events
                    .iter()
                    .filter(|e| e.a >> 48 == t)
                    .map(|e| e.a & 0xffff_ffff_ffff)
                    .collect();
                assert!(mine.windows(2).all(|w| w[0] < w[1]), "writer {t} replayed events");
            }
        }
    }

    stop.store(true, Ordering::Relaxed);
    let emitted: Vec<u64> = writers.into_iter().map(|w| w.join().unwrap()).collect();
    assert!(emitted.iter().all(|&n| n > 0), "every writer made progress");

    // Rings must still be fully consumable after 300 racing snapshots: a
    // quiescent emit lands, and the final drain returns it untorn along
    // with a coherent newest-window of the race.
    let sentinel = (WRITERS << 48) | 0xbeef;
    tracer.instant(EventKind::QueueDepth, 9, sentinel, sentinel.wrapping_mul(31));
    let drained = tracer.drain();
    let (_, events) = &drained[tracer.workers()];
    assert!(!events.is_empty(), "rings left unconsumable after racing drains");
    for ev in events {
        assert_eq!(ev.b, ev.a.wrapping_mul(31), "torn event in post-race drain");
    }
    assert_eq!(events.last().map(|e| e.a), Some(sentinel), "post-race emit not recorded");
}
