//! Loom models for the flight-recorder ring (`phoebe_common::trace`).
//!
//! Run with `scripts/loom.sh` or
//! `RUSTFLAGS="--cfg loom" cargo test -p phoebe-common --test loom_trace_ring`.
//!
//! The ring's drain contract: a drain concurrent with emission returns
//! only fully published events — a slot being written or overwritten
//! mid-read is skipped, never returned torn. Events are emitted with
//! `b == a * 10` so any torn mix of two events' words is detectable.
#![cfg(loom)]

use loom::sync::Arc;
use phoebe_common::trace::{EventKind, Tracer};

fn assert_untorn(tracer: &Tracer) -> usize {
    let mut n = 0;
    for (_, events) in tracer.drain() {
        for ev in events {
            assert_eq!(ev.kind(), Some(EventKind::QueueDepth), "torn kind: {ev:?}");
            assert_eq!(ev.b, ev.a * 10, "torn payload: {ev:?}");
            n += 1;
        }
    }
    n
}

/// One emitter races one drainer on a capacity-2 ring; a third emit after
/// the join forces a wrap (overwriting the oldest slot) and the final
/// drain must see exactly the two youngest events.
#[test]
fn concurrent_drain_sees_no_torn_events() {
    loom::model(|| {
        // workers = 0: a single (external) ring shared by every thread,
        // which maximizes emit/drain contention.
        let tracer = Arc::new(Tracer::new(0, 2));
        let emitter = {
            let tracer = Arc::clone(&tracer);
            loom::thread::spawn(move || {
                tracer.instant(EventKind::QueueDepth, 0, 1, 10);
                tracer.instant(EventKind::QueueDepth, 0, 2, 20);
            })
        };
        let seen = assert_untorn(&tracer);
        assert!(seen <= 2, "capacity-2 ring returned {seen} events");
        emitter.join().unwrap();

        // Quiescent wrap: the third emit overwrites the first.
        tracer.instant(EventKind::QueueDepth, 0, 3, 30);
        assert_eq!(tracer.total_emitted(), 3);
        let mut a_values: Vec<u64> =
            tracer.drain().into_iter().flat_map(|(_, evs)| evs).map(|ev| ev.a).collect();
        a_values.sort_unstable();
        assert_eq!(a_values, [2, 3], "ring must hold exactly the two youngest events");
    });
}

/// The `/metrics`-era shape: *two* concurrent drainers (a live `/trace`
/// snapshot racing a watchdog incident capture) against one emitter.
/// Drains are read-only, so each must independently see only fully
/// published events, and neither disturbs the ring: a quiescent drain at
/// the end still returns exactly the published events.
#[test]
fn two_racing_drainers_each_see_only_published_events() {
    loom::model(|| {
        let tracer = Arc::new(Tracer::new(0, 2));
        let emitter = {
            let tracer = Arc::clone(&tracer);
            loom::thread::spawn(move || {
                tracer.instant(EventKind::QueueDepth, 0, 1, 10);
                tracer.instant(EventKind::QueueDepth, 0, 2, 20);
            })
        };
        let drainer = {
            let tracer = Arc::clone(&tracer);
            loom::thread::spawn(move || assert_untorn(&tracer))
        };
        let seen_here = assert_untorn(&tracer);
        assert!(seen_here <= 2);
        assert!(drainer.join().unwrap() <= 2);
        emitter.join().unwrap();

        // Neither racing drain consumed or corrupted anything.
        let mut a_values: Vec<u64> =
            tracer.drain().into_iter().flat_map(|(_, evs)| evs).map(|ev| ev.a).collect();
        a_values.sort_unstable();
        assert_eq!(a_values, [1, 2], "rings must stay intact after concurrent drains");
    });
}

/// Two emitters race each other: index claims must be unique, so after
/// the join both events are present exactly once (capacity 2, no wrap).
#[test]
fn racing_emitters_never_lose_or_duplicate_slots() {
    loom::model(|| {
        let tracer = Arc::new(Tracer::new(0, 2));
        let spawn_emitter = |a: u64| {
            let tracer = Arc::clone(&tracer);
            loom::thread::spawn(move || {
                tracer.instant(EventKind::QueueDepth, 0, a, a * 10);
            })
        };
        let (t1, t2) = (spawn_emitter(1), spawn_emitter(2));
        t1.join().unwrap();
        t2.join().unwrap();
        assert_eq!(tracer.total_emitted(), 2);
        let mut a_values: Vec<u64> =
            tracer.drain().into_iter().flat_map(|(_, evs)| evs).map(|ev| ev.a).collect();
        a_values.sort_unstable();
        assert_eq!(a_values, [1, 2], "each claimed slot must publish exactly once");
    });
}
