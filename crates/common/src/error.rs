//! The kernel-wide error type.
//!
//! PhoebeDB distinguishes *transaction outcomes the caller must handle*
//! (write-write conflicts under repeatable read, explicit aborts, lock
//! timeouts) from *environmental failures* (I/O, corruption). Both travel in
//! one enum so the public API has a single `Result` alias, but
//! [`PhoebeError::is_retryable`] tells a driver whether simply re-running
//! the transaction is the right response — which is exactly what the TPC-C
//! driver does.

use crate::ids::{RowId, TableId, Xid};
use std::fmt;
use std::io;

/// Workspace-wide result alias.
pub type Result<T> = std::result::Result<T, PhoebeError>;

/// Every way a kernel operation can fail.
///
/// Marked `#[non_exhaustive]`: downstream code must keep a wildcard arm
/// so new failure modes can be added without a breaking release.
#[derive(Debug)]
#[non_exhaustive]
pub enum PhoebeError {
    /// A configuration rejected by [`crate::config::KernelConfigBuilder`].
    Config(String),
    /// A write-write conflict forced this transaction to abort (repeatable
    /// read semantics, §6.2: if the concurrent writer commits, we abort).
    WriteConflict { table: TableId, row: RowId, holder: Xid },
    /// The transaction was explicitly rolled back by the caller.
    UserAbort,
    /// The transaction waited too long on another transaction's ID lock.
    LockTimeout { waiting_for: Xid },
    /// A row that must exist was momentarily invisible (version-chain
    /// transition race); re-running the transaction resolves it.
    TransientMiss { what: &'static str },
    /// A row id was not found in the table (neither hot/cold nor frozen).
    RowNotFound { table: TableId, row: RowId },
    /// A unique secondary index rejected a duplicate key.
    DuplicateKey { index: TableId },
    /// The requested table/index does not exist in the catalog.
    NoSuchTable(TableId),
    /// A tuple failed schema validation (wrong arity or column type).
    SchemaMismatch { table: TableId, detail: String },
    /// The buffer pool could not find an evictable frame.
    OutOfFrames,
    /// Underlying file I/O failed.
    Io(io::Error),
    /// The WAL hub halted after a log write or fsync failed: the commit's
    /// durability cannot be established and the kernel stops acknowledging
    /// transactions (a crash/restart is the only way forward).
    WalHalted,
    /// On-disk data failed a checksum or structural validation.
    Corruption(String),
    /// Internal invariant violation; indicates a kernel bug.
    Internal(String),
}

impl PhoebeError {
    /// True when re-running the transaction from the top is the correct
    /// response (the classic optimistic/MVCC retry loop).
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            PhoebeError::WriteConflict { .. }
                | PhoebeError::LockTimeout { .. }
                | PhoebeError::TransientMiss { .. }
        )
    }

    /// Shorthand for an internal invariant failure.
    pub fn internal(msg: impl Into<String>) -> Self {
        PhoebeError::Internal(msg.into())
    }

    /// Shorthand for a corruption report.
    pub fn corruption(msg: impl Into<String>) -> Self {
        PhoebeError::Corruption(msg.into())
    }
}

impl fmt::Display for PhoebeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PhoebeError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            PhoebeError::WriteConflict { table, row, holder } => {
                write!(f, "write-write conflict on {table}/{row} held by {holder}")
            }
            PhoebeError::UserAbort => write!(f, "transaction aborted by user"),
            PhoebeError::LockTimeout { waiting_for } => {
                write!(f, "timed out waiting on transaction {waiting_for}")
            }
            PhoebeError::TransientMiss { what } => {
                write!(f, "transient miss on {what}; retry the transaction")
            }
            PhoebeError::RowNotFound { table, row } => {
                write!(f, "row {row} not found in table {table}")
            }
            PhoebeError::DuplicateKey { index } => {
                write!(f, "duplicate key in unique index {index}")
            }
            PhoebeError::NoSuchTable(t) => write!(f, "no such table {t}"),
            PhoebeError::SchemaMismatch { table, detail } => {
                write!(f, "schema mismatch on table {table}: {detail}")
            }
            PhoebeError::OutOfFrames => write!(f, "buffer pool has no evictable frame"),
            PhoebeError::Io(e) => write!(f, "i/o error: {e}"),
            PhoebeError::WalHalted => {
                write!(f, "wal halted after a log i/o failure; commit durability unknown")
            }
            PhoebeError::Corruption(msg) => write!(f, "corruption detected: {msg}"),
            PhoebeError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for PhoebeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PhoebeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for PhoebeError {
    fn from(e: io::Error) -> Self {
        PhoebeError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::*;

    #[test]
    fn retryability_classification() {
        let conflict = PhoebeError::WriteConflict {
            table: TableId(1),
            row: RowId(2),
            holder: Xid::from_start_ts(3),
        };
        assert!(conflict.is_retryable());
        assert!(PhoebeError::LockTimeout { waiting_for: Xid::from_start_ts(1) }.is_retryable());
        assert!(!PhoebeError::UserAbort.is_retryable());
        assert!(!PhoebeError::internal("x").is_retryable());
    }

    #[test]
    fn io_errors_convert_and_chain() {
        let e: PhoebeError = io::Error::other("disk on fire").into();
        assert!(e.to_string().contains("disk on fire"));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn display_is_human_readable() {
        let e = PhoebeError::RowNotFound { table: TableId(4), row: RowId(9) };
        assert_eq!(e.to_string(), "row r9 not found in table t4");
    }
}
