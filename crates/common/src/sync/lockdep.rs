//! Kernel lockdep: declared lock ranks plus (under `--features lockdep`)
//! runtime acquisition-order enforcement, Linux-lockdep style.
//!
//! Every kernel `Mutex`/`RwLock` is constructed through [`RankedMutex`] /
//! [`RankedRwLock`] and declares a [`Rank`] and a class name at the
//! construction site. Release builds compile the wrappers down to the
//! plain shim lock — no extra fields, no extra branches. With the
//! `lockdep` feature on (debug/CI), two checkers run on every blocking
//! acquisition:
//!
//! 1. **Per-thread held-rank stack.** Acquiring a lock whose rank is
//!    *below* the highest rank already held on the calling thread panics
//!    immediately, naming both locks and both acquisition sites. Equal
//!    ranks are allowed across *distinct* classes (the wait-for graph
//!    arbitrates those), and within the *same* class only for ranks that
//!    declare self-nesting ([`Rank::allows_self_nesting`]) — e.g. B-tree
//!    parent/child latch coupling, or `try_retire` holding every twin
//!    entry shard at once.
//! 2. **Process-global wait-for graph.** Each acquisition records an
//!    edge from every lock class held on this thread to the class being
//!    acquired. A cycle in that graph is a potential deadlock even if no
//!    single thread ever looks locally inconsistent (A→B on one thread,
//!    B→A on another, never co-held); closing a cycle panics with the
//!    full class chain and first-seen sites.
//!
//! `try_*` acquisitions never block, so they can never be the waiting
//! side of a deadlock: they skip both checks but still push onto the
//! held stack so later *blocking* acquisitions are checked against them.
//! This is what makes deliberate out-of-order `try_write` (eviction
//! probing victim frames) legal.
//!
//! Under `--cfg loom` the wrappers are thin pass-throughs over the loom
//! primitives with no tracking: loom explores tiny bounded schedules
//! where the ordering discipline is the *subject* of other tests, and
//! global statics do not fit the model-checker lifecycle. The wait-for
//! graph structure itself ([`WaitForGraph`]) does compile under loom so
//! the `loom_lockdep` suite can verify it is race-free.
//!
//! See DESIGN.md "Lock ordering" for the rank lattice and waiver policy.

#![allow(clippy::new_without_default)]

use super::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};
use core::fmt;
use core::ops::{Deref, DerefMut};

use super::Condvar;

/// Total rank order for kernel locks, lowest acquired first.
///
/// Discriminants are spaced so future ranks can slot in without
/// renumbering. A blocking acquisition must never descend this order
/// while another kernel lock is held. The lattice and the reason each
/// edge exists are documented in DESIGN.md "Lock ordering".
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
#[repr(u8)]
pub enum Rank {
    /// `Database` control-plane state: name map, DDL log, runtime handle,
    /// telemetry/watchdog slots (`core/db.rs`).
    Db = 10,
    /// Catalog/table registry state (`core/catalog.rs`).
    Catalog = 15,
    /// Per-table DDL/DML intent locks — taken at statement start, before
    /// any page latch (`txn/locks.rs`).
    TableLock = 20,
    /// Hybrid-latch internals guarding frame payloads. Low in the order:
    /// tuple operations hold a leaf latch while consulting twin tables,
    /// UNDO chains, the buffer pool, and the WAL. Self-nesting:
    /// parent/child latch coupling during B-tree descent and SMOs
    /// (`storage/latch.rs`).
    FrameMeta = 25,
    /// Twin-table registry shards — consulted under leaf latches; held
    /// while retiring tables, which takes entry-shard locks underneath
    /// (`txn/twin.rs`).
    TwinRegistry = 30,
    /// Twin-table entry shards. Self-nesting: `try_retire` holds every
    /// shard of one table simultaneously (`txn/twin.rs`).
    TwinShard = 35,
    /// Slot-local UNDO arena free queue (`txn/undo.rs`).
    UndoArena = 40,
    /// UNDO log chain links (`txn/undo.rs`).
    UndoLink = 45,
    /// Buffer-pool control state: WAL barrier hook, fault-service sender —
    /// consulted during eviction while frame latches are held
    /// (`storage/buffer.rs`).
    BufferPool = 50,
    /// Buffer partition free/cooling lists — taken under frame latches on
    /// the eviction/release paths (`storage/buffer.rs`).
    BufferPartition = 55,
    /// Page-file free-page list (`storage/pagefile.rs`).
    PageFile = 60,
    /// Frozen-tier block directory and tombstones (`storage/tier/frozen.rs`).
    FrozenTier = 65,
    /// Page-fault service tickets (`storage/fault_service.rs`).
    FaultService = 70,
    /// WAL hub control state: flusher handle, horizon probe
    /// (`wal/writer.rs`).
    WalHub = 75,
    /// Per-slot WAL writer buffers (`wal/writer.rs`).
    WalSlot = 80,
    /// WAL flusher doorbell — rung while a slot buffer may be held
    /// (`wal/writer.rs`).
    WalDoorbell = 82,
    /// Async-I/O submission/completion state (`wal/aio.rs`).
    Aio = 85,
    /// Runtime shared control state: worker-thread registry, hooks
    /// (`runtime/runtime.rs`).
    RuntimeShared = 88,
    /// Per-worker injection queues (`runtime/runtime.rs`).
    RuntimeQueue = 90,
    /// Timer wheel state (`runtime/timer.rs`).
    Timer = 95,
    /// Async notification waiter lists — near-leaf: signalled from many
    /// subsystems while their own locks are held (`runtime/notify.rs`).
    Notify = 100,
    /// Join-handle result slots — terminal hand-off, nothing is acquired
    /// under them (`runtime/task.rs`).
    JoinTask = 105,
    /// True leaves: diagnostics and miscellany that never acquire
    /// another kernel lock while held.
    Leaf = 110,
}

impl Rank {
    /// Every rank, in ascending order. The static lock-order pass
    /// (`cargo xtask lint-kernel`) resolves `Rank::<Name>` tokens it finds
    /// at construction sites against this table, so rank values are never
    /// duplicated outside this file.
    pub const ALL: [Rank; 23] = [
        Rank::Db,
        Rank::Catalog,
        Rank::TableLock,
        Rank::FrameMeta,
        Rank::TwinRegistry,
        Rank::TwinShard,
        Rank::UndoArena,
        Rank::UndoLink,
        Rank::BufferPool,
        Rank::BufferPartition,
        Rank::PageFile,
        Rank::FrozenTier,
        Rank::FaultService,
        Rank::WalHub,
        Rank::WalSlot,
        Rank::WalDoorbell,
        Rank::Aio,
        Rank::RuntimeShared,
        Rank::RuntimeQueue,
        Rank::Timer,
        Rank::Notify,
        Rank::JoinTask,
        Rank::Leaf,
    ];

    /// Ranks whose *same class* may legally be acquired while already
    /// held on the same thread.
    #[must_use]
    pub const fn allows_self_nesting(self) -> bool {
        matches!(self, Rank::TwinShard | Rank::FrameMeta)
    }

    #[must_use]
    pub const fn as_str(self) -> &'static str {
        match self {
            Rank::Db => "Db",
            Rank::Catalog => "Catalog",
            Rank::TwinRegistry => "TwinRegistry",
            Rank::TwinShard => "TwinShard",
            Rank::TableLock => "TableLock",
            Rank::UndoArena => "UndoArena",
            Rank::UndoLink => "UndoLink",
            Rank::FrameMeta => "FrameMeta",
            Rank::BufferPool => "BufferPool",
            Rank::BufferPartition => "BufferPartition",
            Rank::PageFile => "PageFile",
            Rank::FrozenTier => "FrozenTier",
            Rank::FaultService => "FaultService",
            Rank::WalHub => "WalHub",
            Rank::WalSlot => "WalSlot",
            Rank::WalDoorbell => "WalDoorbell",
            Rank::Aio => "Aio",
            Rank::RuntimeShared => "RuntimeShared",
            Rank::RuntimeQueue => "RuntimeQueue",
            Rank::Timer => "Timer",
            Rank::Notify => "Notify",
            Rank::JoinTask => "JoinTask",
            Rank::Leaf => "Leaf",
        }
    }
}

impl fmt::Display for Rank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

// ---------------------------------------------------------------------------
// Wait-for graph: compiled whenever the lockdep feature is on (including
// under loom, so the loom_lockdep suite can model it).
// ---------------------------------------------------------------------------

#[cfg(feature = "lockdep")]
pub use graph::{ClassId, CycleError, WaitForGraph};

#[cfg(feature = "lockdep")]
pub mod graph {
    //! The cross-thread wait-for edge set.
    //!
    //! Nodes are lock *classes* (one per distinct `(Rank, name)` pair),
    //! edges mean "some thread held `from` while blocking to acquire
    //! `to`". Inserting an edge that closes a cycle reports the full
    //! chain instead of inserting it; a cycle here is a potential
    //! deadlock even if every individual thread's acquisition history is
    //! locally rank-consistent.

    use crate::sync::Mutex;
    use std::panic::Location;

    /// Dense class identifier handed out by the class registry.
    pub type ClassId = u32;

    #[derive(Clone, Copy)]
    struct Edge {
        from: ClassId,
        to: ClassId,
        /// Where `to` was being acquired when the edge was first observed.
        to_site: &'static Location<'static>,
    }

    /// A would-be edge closed a cycle in the wait-for graph.
    #[derive(Debug)]
    pub struct CycleError {
        /// The class chain `to → … → from` already present in the graph;
        /// the rejected edge `from → to` closes it. Each hop carries the
        /// first-seen acquisition site of its target class.
        pub chain: Vec<(ClassId, &'static Location<'static>)>,
        pub from: ClassId,
        pub to: ClassId,
    }

    /// Process-global wait-for edge set with cycle detection.
    ///
    /// Edge storage is a flat `Vec` behind one shim mutex: the set is
    /// small (one entry per distinct ordered class pair ever observed),
    /// deduplication makes inserts rare after warm-up, and the flat
    /// representation keeps `new` const-constructible for the global
    /// static. The mutex comes from the sync shim so loom can
    /// exhaustively interleave concurrent `record_edge` calls.
    pub struct WaitForGraph {
        edges: Mutex<Vec<Edge>>,
    }

    impl WaitForGraph {
        #[must_use]
        pub fn new() -> Self {
            WaitForGraph { edges: Mutex::new(Vec::new()) }
        }

        /// Record `from → to` ("held `from` while acquiring `to`").
        ///
        /// Returns `Err` — without inserting — if the edge would close a
        /// cycle. Idempotent for already-present edges. Self-edges are
        /// the caller's responsibility to filter (same-class nesting is
        /// arbitrated by `Rank::allows_self_nesting`, not the graph).
        pub fn record_edge(
            &self,
            from: ClassId,
            to: ClassId,
            to_site: &'static Location<'static>,
        ) -> Result<(), CycleError> {
            let mut edges = self.edges.lock();
            if edges.iter().any(|e| e.from == from && e.to == to) {
                return Ok(());
            }
            // Adding from→to creates a cycle iff `from` is already
            // reachable from `to`. DFS over the (small) flat edge list.
            if let Some(chain) = reach_chain(&edges, to, from) {
                return Err(CycleError { chain, from, to });
            }
            edges.push(Edge { from, to, to_site });
            Ok(())
        }

        /// Number of distinct edges recorded (test/diagnostic hook).
        #[must_use]
        pub fn edge_count(&self) -> usize {
            self.edges.lock().len()
        }

        /// Snapshot of the edge set as `(from, to)` pairs.
        #[must_use]
        pub fn edge_pairs(&self) -> Vec<(ClassId, ClassId)> {
            self.edges.lock().iter().map(|e| (e.from, e.to)).collect()
        }
    }

    /// DFS path `start → … → goal` over `edges`, if one exists. Each hop
    /// reports the first-seen site at which its target class was being
    /// acquired.
    fn reach_chain(
        edges: &[Edge],
        start: ClassId,
        goal: ClassId,
    ) -> Option<Vec<(ClassId, &'static Location<'static>)>> {
        let mut stack = vec![start];
        let mut visited = vec![start];
        // parent[i] = (class, edge used to reach it) for path recovery.
        let mut parents: Vec<(ClassId, ClassId, &'static Location<'static>)> = Vec::new();
        while let Some(node) = stack.pop() {
            if node == goal {
                // Recover the path goal ← … ← start.
                let mut path = vec![];
                let mut cur = goal;
                while cur != start {
                    let &(child, parent, site) =
                        parents.iter().find(|&&(c, _, _)| c == cur).expect("parent recorded");
                    path.push((child, site));
                    cur = parent;
                }
                path.push((
                    start,
                    edges
                        .iter()
                        .find(|e| e.to == start)
                        .map_or_else(|| Location::caller(), |e| e.to_site),
                ));
                path.reverse();
                return Some(path);
            }
            for e in edges.iter().filter(|e| e.from == node) {
                if !visited.contains(&e.to) {
                    visited.push(e.to);
                    parents.push((e.to, node, e.to_site));
                    stack.push(e.to);
                }
            }
        }
        None
    }
}

// ---------------------------------------------------------------------------
// Active checker: class registry, per-thread held stack, global graph.
// Native (non-loom) lockdep builds only.
// ---------------------------------------------------------------------------

#[cfg(all(feature = "lockdep", not(loom)))]
mod active {
    use super::graph::{ClassId, WaitForGraph};
    use super::Rank;
    use parking_lot::Mutex;
    use std::cell::RefCell;
    use std::panic::Location;

    /// Class registry: one `ClassId` per distinct `(rank, name)` pair.
    /// Linear scan — a few dozen classes, debug builds only. Uses a raw
    /// parking_lot mutex (not a ranked wrapper) so the checker never
    /// recurses into itself.
    static CLASSES: Mutex<Vec<(Rank, &'static str)>> = Mutex::new(Vec::new());

    static GRAPH: std::sync::LazyLock<WaitForGraph> = std::sync::LazyLock::new(WaitForGraph::new);

    pub(super) fn class_of(rank: Rank, name: &'static str) -> ClassId {
        let mut classes = CLASSES.lock();
        if let Some(i) = classes.iter().position(|&(r, n)| r == rank && n == name) {
            return i as ClassId;
        }
        classes.push((rank, name));
        (classes.len() - 1) as ClassId
    }

    fn class_name(id: ClassId) -> (Rank, &'static str) {
        CLASSES.lock()[id as usize]
    }

    pub(super) struct Held {
        token: u64,
        class: ClassId,
        rank: Rank,
        name: &'static str,
        site: &'static Location<'static>,
    }

    thread_local! {
        static HELD: RefCell<Vec<Held>> = const { RefCell::new(Vec::new()) };
        static NEXT_TOKEN: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
    }

    /// RAII token: pops the matching held-stack entry when the guard drops.
    pub(super) struct HeldToken {
        token: u64,
    }

    impl Drop for HeldToken {
        fn drop(&mut self) {
            HELD.with(|h| {
                let mut held = h.borrow_mut();
                // Guards may drop out of push order; search from the top.
                if let Some(i) = held.iter().rposition(|e| e.token == self.token) {
                    held.remove(i);
                }
            });
        }
    }

    fn push(
        rank: Rank,
        name: &'static str,
        class: ClassId,
        site: &'static Location<'static>,
    ) -> HeldToken {
        let token = NEXT_TOKEN.with(|t| {
            let v = t.get();
            t.set(v + 1);
            v
        });
        HELD.with(|h| h.borrow_mut().push(Held { token, class, rank, name, site }));
        HeldToken { token }
    }

    /// A non-blocking acquisition succeeded: no order checks (a trylock
    /// can never be the waiting side of a deadlock), but the guard still
    /// joins the held stack so later blocking acquisitions see it.
    pub(super) fn acquired_try(
        rank: Rank,
        name: &'static str,
        class: ClassId,
        site: &'static Location<'static>,
    ) -> HeldToken {
        push(rank, name, class, site)
    }

    /// A blocking acquisition is about to park: run both checkers.
    pub(super) fn acquire_blocking(
        rank: Rank,
        name: &'static str,
        class: ClassId,
        site: &'static Location<'static>,
    ) -> HeldToken {
        let violation: Option<String> = HELD.with(|h| {
            let held = h.borrow();
            // Rank check against the highest rank currently held.
            if let Some(top) = held.iter().max_by_key(|e| e.rank) {
                if rank < top.rank {
                    return Some(format!(
                        "lockdep: lock order violation — acquiring \"{name}\" (rank {rank}) at \
                         {site} while holding \"{}\" (rank {}) acquired at {}; ranks must not \
                         descend",
                        top.name, top.rank, top.site,
                    ));
                }
            }
            // Same-class recursion needs an explicit self-nesting rank.
            if let Some(prev) = held.iter().find(|e| e.class == class) {
                if !rank.allows_self_nesting() {
                    return Some(format!(
                        "lockdep: recursive acquisition — \"{name}\" (rank {rank}) at {site} is \
                         already held by this thread (acquired at {}), and rank {rank} does not \
                         allow self-nesting",
                        prev.site,
                    ));
                }
            }
            // Wait-for edges from every held class to the new one.
            for e in held.iter() {
                if e.class == class {
                    continue;
                }
                if let Err(cycle) = GRAPH.record_edge(e.class, class, site) {
                    let mut msg = format!(
                        "lockdep: wait-for cycle — acquiring \"{name}\" (rank {rank}) at {site} \
                         while holding \"{}\" (rank {}) acquired at {} would close the cycle:",
                        e.name, e.rank, e.site,
                    );
                    for (cid, csite) in &cycle.chain {
                        let (crank, cname) = class_name(*cid);
                        msg.push_str(&format!("\n  -> \"{cname}\" (rank {crank}) at {csite}"));
                    }
                    let (frank, fname) = class_name(cycle.from);
                    msg.push_str(&format!("\n  -> \"{fname}\" (rank {frank}) closing the loop"));
                    return Some(msg);
                }
            }
            None
        });
        if let Some(msg) = violation {
            panic!("{msg}");
        }
        push(rank, name, class, site)
    }

    /// Diagnostic: names of locks currently held by this thread.
    pub fn held_locks() -> Vec<&'static str> {
        HELD.with(|h| h.borrow().iter().map(|e| e.name).collect())
    }
}

#[cfg(all(feature = "lockdep", not(loom)))]
pub use active::held_locks;

// ---------------------------------------------------------------------------
// Lock metadata embedded in the wrappers (lockdep builds only).
// ---------------------------------------------------------------------------

#[cfg(all(feature = "lockdep", not(loom)))]
struct LockMeta {
    rank: Rank,
    name: &'static str,
    /// Cached class id + 1 (0 = unresolved), filled on first acquisition.
    class: std::sync::atomic::AtomicU32,
}

#[cfg(all(feature = "lockdep", not(loom)))]
impl LockMeta {
    fn new(rank: Rank, name: &'static str) -> Self {
        LockMeta { rank, name, class: std::sync::atomic::AtomicU32::new(0) }
    }

    fn class(&self) -> graph::ClassId {
        use std::sync::atomic::Ordering;
        // ORDERING: Relaxed is enough — class_of is idempotent for a
        // given (rank, name), so racing threads cache the same id.
        let cached = self.class.load(Ordering::Relaxed);
        if cached != 0 {
            return cached - 1;
        }
        let id = active::class_of(self.rank, self.name);
        self.class.store(id + 1, Ordering::Relaxed);
        id
    }

    #[track_caller]
    fn acquire_blocking(&self) -> active::HeldToken {
        active::acquire_blocking(self.rank, self.name, self.class(), std::panic::Location::caller())
    }

    #[track_caller]
    fn acquired_try(&self) -> active::HeldToken {
        active::acquired_try(self.rank, self.name, self.class(), std::panic::Location::caller())
    }
}

// ---------------------------------------------------------------------------
// RankedMutex
// ---------------------------------------------------------------------------

/// A mutex with a declared kernel lock rank. See the module docs.
pub struct RankedMutex<T> {
    #[cfg(all(feature = "lockdep", not(loom)))]
    meta: LockMeta,
    inner: Mutex<T>,
}

impl<T> RankedMutex<T> {
    /// Construct with a declared rank and class name. The arguments are
    /// discarded entirely in non-lockdep builds.
    #[must_use]
    pub fn new(rank: Rank, name: &'static str, value: T) -> Self {
        #[cfg(not(all(feature = "lockdep", not(loom))))]
        let _ = (rank, name);
        RankedMutex {
            #[cfg(all(feature = "lockdep", not(loom)))]
            meta: LockMeta::new(rank, name),
            inner: Mutex::new(value),
        }
    }

    #[track_caller]
    pub fn lock(&self) -> RankedMutexGuard<'_, T> {
        #[cfg(all(feature = "lockdep", not(loom)))]
        let token = self.meta.acquire_blocking();
        RankedMutexGuard {
            inner: self.inner.lock(),
            #[cfg(all(feature = "lockdep", not(loom)))]
            _token: token,
        }
    }

    #[track_caller]
    pub fn try_lock(&self) -> Option<RankedMutexGuard<'_, T>> {
        let inner = self.inner.try_lock()?;
        Some(RankedMutexGuard {
            inner,
            #[cfg(all(feature = "lockdep", not(loom)))]
            _token: self.meta.acquired_try(),
        })
    }
}

/// Guard for [`RankedMutex`]; pops the held-rank stack on drop.
pub struct RankedMutexGuard<'a, T> {
    inner: MutexGuard<'a, T>,
    #[cfg(all(feature = "lockdep", not(loom)))]
    _token: active::HeldToken,
}

impl<T> Deref for RankedMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> DerefMut for RankedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(not(loom))]
impl<T> RankedMutexGuard<'_, T> {
    /// Block on `cv`, releasing and re-acquiring the mutex. The lock
    /// stays on the held stack across the wait: the only kernel condvar
    /// sites (timer, AIO completion, join handles) hold exactly this one
    /// lock, so the approximation cannot mask an ordering bug.
    pub fn wait(&mut self, cv: &Condvar) {
        cv.wait(&mut self.inner);
    }

    /// Timed variant of [`Self::wait`].
    pub fn wait_for(
        &mut self,
        cv: &Condvar,
        timeout: core::time::Duration,
    ) -> parking_lot::WaitTimeoutResult {
        cv.wait_for(&mut self.inner, timeout)
    }
}

#[cfg(loom)]
impl<T> RankedMutexGuard<'_, T> {
    /// Condvars are not modeled under loom; these exist only so
    /// condvar-owning modules compile in `--cfg loom` builds. Loom models
    /// never exercise them.
    pub fn wait(&mut self, _cv: &Condvar) {
        unreachable!("condvar waits are not modeled under loom")
    }

    /// See [`Self::wait`].
    pub fn wait_for(
        &mut self,
        _cv: &Condvar,
        _timeout: core::time::Duration,
    ) -> parking_lot::WaitTimeoutResult {
        unreachable!("condvar waits are not modeled under loom")
    }
}

// ---------------------------------------------------------------------------
// RankedRwLock
// ---------------------------------------------------------------------------

/// A reader-writer lock with a declared kernel lock rank.
pub struct RankedRwLock<T> {
    #[cfg(all(feature = "lockdep", not(loom)))]
    meta: LockMeta,
    inner: RwLock<T>,
}

impl<T> RankedRwLock<T> {
    /// Construct with a declared rank and class name. The arguments are
    /// discarded entirely in non-lockdep builds.
    #[must_use]
    pub fn new(rank: Rank, name: &'static str, value: T) -> Self {
        #[cfg(not(all(feature = "lockdep", not(loom))))]
        let _ = (rank, name);
        RankedRwLock {
            #[cfg(all(feature = "lockdep", not(loom)))]
            meta: LockMeta::new(rank, name),
            inner: RwLock::new(value),
        }
    }

    #[track_caller]
    pub fn read(&self) -> RankedReadGuard<'_, T> {
        #[cfg(all(feature = "lockdep", not(loom)))]
        let token = self.meta.acquire_blocking();
        RankedReadGuard {
            inner: self.inner.read(),
            #[cfg(all(feature = "lockdep", not(loom)))]
            _token: token,
        }
    }

    #[track_caller]
    pub fn write(&self) -> RankedWriteGuard<'_, T> {
        #[cfg(all(feature = "lockdep", not(loom)))]
        let token = self.meta.acquire_blocking();
        RankedWriteGuard {
            inner: self.inner.write(),
            #[cfg(all(feature = "lockdep", not(loom)))]
            _token: token,
        }
    }

    #[track_caller]
    pub fn try_read(&self) -> Option<RankedReadGuard<'_, T>> {
        let inner = self.inner.try_read()?;
        Some(RankedReadGuard {
            inner,
            #[cfg(all(feature = "lockdep", not(loom)))]
            _token: self.meta.acquired_try(),
        })
    }

    #[track_caller]
    pub fn try_write(&self) -> Option<RankedWriteGuard<'_, T>> {
        let inner = self.inner.try_write()?;
        Some(RankedWriteGuard {
            inner,
            #[cfg(all(feature = "lockdep", not(loom)))]
            _token: self.meta.acquired_try(),
        })
    }
}

/// Shared guard for [`RankedRwLock`].
pub struct RankedReadGuard<'a, T> {
    inner: RwLockReadGuard<'a, T>,
    #[cfg(all(feature = "lockdep", not(loom)))]
    _token: active::HeldToken,
}

impl<T> Deref for RankedReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// Exclusive guard for [`RankedRwLock`].
pub struct RankedWriteGuard<'a, T> {
    inner: RwLockWriteGuard<'a, T>,
    #[cfg(all(feature = "lockdep", not(loom)))]
    _token: active::HeldToken,
}

impl<T> Deref for RankedWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> DerefMut for RankedWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(all(test, feature = "lockdep", not(loom)))]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn expect_panic<F: FnOnce() + Send + 'static>(f: F) -> String {
        let err = std::thread::spawn(f).join().expect_err("lockdep should have panicked");
        match err.downcast::<String>() {
            Ok(s) => *s,
            Err(other) => other.downcast::<&str>().map(|s| s.to_string()).unwrap(),
        }
    }

    #[test]
    fn ascending_order_is_clean() {
        let a = RankedMutex::new(Rank::Db, "t.asc.db", 1u32);
        let b = RankedMutex::new(Rank::WalSlot, "t.asc.wal", 2u32);
        let ga = a.lock();
        let gb = b.lock();
        assert_eq!(*ga + *gb, 3);
    }

    #[test]
    fn two_thread_rank_inversion_panics_with_both_names() {
        let low = Arc::new(RankedMutex::new(Rank::Catalog, "t.inv.catalog", ()));
        let high = Arc::new(RankedRwLock::new(Rank::Notify, "t.inv.notify", ()));
        // Thread 1 takes them in rank order: fine.
        {
            let (low, high) = (low.clone(), high.clone());
            std::thread::spawn(move || {
                let _l = low.lock();
                let _h = high.read();
            })
            .join()
            .unwrap();
        }
        // Thread 2 descends the order: must panic naming both locks.
        let msg = expect_panic(move || {
            let _h = high.write();
            let _l = low.lock();
        });
        assert!(msg.contains("t.inv.catalog"), "missing acquired lock name: {msg}");
        assert!(msg.contains("t.inv.notify"), "missing held lock name: {msg}");
        assert!(msg.contains("lock order violation"), "wrong kind: {msg}");
    }

    #[test]
    fn three_lock_wait_for_cycle_is_detected_across_threads() {
        // Three classes at the same rank: each pairwise acquisition is
        // locally rank-consistent, and no two threads ever co-hold the
        // same pair — only the global wait-for graph sees the cycle.
        let a = Arc::new(RankedMutex::new(Rank::Leaf, "t.cyc.a", ()));
        let b = Arc::new(RankedMutex::new(Rank::Leaf, "t.cyc.b", ()));
        let c = Arc::new(RankedMutex::new(Rank::Leaf, "t.cyc.c", ()));
        for (x, y) in [(a.clone(), b.clone()), (b.clone(), c.clone())] {
            std::thread::spawn(move || {
                let _x = x.lock();
                let _y = y.lock();
            })
            .join()
            .unwrap();
        }
        let msg = expect_panic(move || {
            let _c = c.lock();
            let _a = a.lock();
        });
        assert!(msg.contains("wait-for cycle"), "wrong kind: {msg}");
        for name in ["t.cyc.a", "t.cyc.b", "t.cyc.c"] {
            assert!(msg.contains(name), "cycle report missing {name}: {msg}");
        }
    }

    #[test]
    fn recursive_acquisition_needs_self_nesting_rank() {
        let l = Arc::new(RankedMutex::new(Rank::PageFile, "t.rec.pagefile", ()));
        let l2 = l.clone();
        let msg = expect_panic(move || {
            let _a = l2.lock();
            let _b = l2.lock();
        });
        assert!(msg.contains("recursive acquisition"), "wrong kind: {msg}");
        drop(l);
    }

    #[test]
    fn self_nesting_rank_may_hold_all_instances() {
        // Mirrors twin-table try_retire holding every entry shard.
        let shards: Vec<_> =
            (0..4).map(|_| RankedMutex::new(Rank::TwinShard, "t.nest.shard", ())).collect();
        let _guards: Vec<_> = shards.iter().map(|s| s.lock()).collect();
    }

    #[test]
    fn try_lock_out_of_order_is_allowed() {
        // Eviction-style probing: try_write on a victim while a higher
        // rank is held must not fire.
        let high = RankedMutex::new(Rank::Notify, "t.try.notify", ());
        let low = RankedRwLock::new(Rank::FrameMeta, "t.try.frame", ());
        let _h = high.lock();
        let g = low.try_write();
        assert!(g.is_some());
    }

    #[test]
    fn out_of_order_guard_drops_unwind_cleanly() {
        let a = RankedMutex::new(Rank::Db, "t.ooo.a", ());
        let b = RankedMutex::new(Rank::Catalog, "t.ooo.b", ());
        let ga = a.lock();
        let gb = b.lock();
        drop(ga);
        drop(gb);
        assert!(held_locks().is_empty());
    }

    #[test]
    fn condvar_wait_roundtrips_through_ranked_guard() {
        let m = Arc::new(RankedMutex::new(Rank::Timer, "t.cv.state", false));
        let cv = Arc::new(Condvar::new());
        let (m2, cv2) = (m.clone(), cv.clone());
        let t = std::thread::spawn(move || {
            let mut g = m2.lock();
            while !*g {
                g.wait(&cv2);
            }
        });
        std::thread::sleep(core::time::Duration::from_millis(10));
        *m.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }
}
