//! Deterministic fault-injection file layer (the crash-torture substrate).
//!
//! Every byte PhoebeDB persists — WAL frames through the AIO pool, page
//! images through the Data Page File — goes through the [`FaultFs`] /
//! [`FaultFile`] traits instead of `std::fs` directly. Production uses
//! [`OsFs`], a zero-cost passthrough. Tests and the crash-torture harness
//! use [`SimFs`], which models the volatile/durable split of a real disk:
//!
//! * a `write_at` lands in a **volatile** cache (the kernel page cache /
//!   device buffer of a real machine) and is visible to reads;
//! * `sync_data` is the only durability barrier: it moves the cached
//!   writes onto the backing file and fsyncs it;
//! * [`SimFs::crash`] freezes the disk at its last durable state plus a
//!   *seeded-random* subset of the volatile writes — some dropped (write
//!   reordering that only an fsync barrier forbids), some torn to a
//!   prefix (a partial sector at the log tail). After a crash every
//!   operation fails with `EIO`, exactly like a dead device.
//!
//! Because the durable layer is a real file on the real filesystem, a
//! crashed [`SimFs`] leaves behind an ordinary on-disk image: recovery
//! opens it with [`OsFs`] as if the machine had rebooted. All randomness
//! comes from the [`FaultConfig`] seed, so any torture failure replays
//! byte-for-byte from its seed.

use rand::{rngs::StdRng, RngExt, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fs::{File, OpenOptions};
use std::io;
use std::os::unix::fs::FileExt;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Knobs for [`SimFs`]. All probabilities are expressed as `one_in` odds
/// (0 disables the fault); all draws come from the single seeded RNG so a
/// run is a pure function of `seed` and the I/O call sequence.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Seed for every fault decision.
    pub seed: u64,
    /// Freeze the disk after this many `write_at` calls (the crash point).
    /// `None` leaves crashing to an explicit [`SimFs::crash`] call.
    pub crash_after_writes: Option<u64>,
    /// One in N writes persists only a prefix and reports the short count
    /// (callers with `write_all` semantics must loop).
    pub short_write_one_in: u64,
    /// One in N writes fails outright with `EIO` without landing any bytes.
    pub fail_write_one_in: u64,
}

impl FaultConfig {
    /// A config that injects no faults until [`SimFs::crash`] is called.
    pub fn crash_only(seed: u64) -> Self {
        FaultConfig { seed, crash_after_writes: None, short_write_one_in: 0, fail_write_one_in: 0 }
    }
}

/// One open file of a fault-injectable filesystem.
///
/// `write_at` may be short or fail per the active fault schedule; callers
/// that need all-or-nothing semantics use [`FaultFile::write_all_at`].
pub trait FaultFile: Send + Sync {
    /// Positional write; returns bytes accepted (possibly short).
    fn write_at(&self, offset: u64, data: &[u8]) -> io::Result<usize>;
    /// Positional read; returns bytes read (short only at end of file).
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<usize>;
    /// Durability barrier for everything previously written to this file.
    fn sync_data(&self) -> io::Result<()>;

    /// Loop `write_at` until every byte is accepted.
    fn write_all_at(&self, mut offset: u64, mut data: &[u8]) -> io::Result<()> {
        while !data.is_empty() {
            let n = self.write_at(offset, data)?;
            if n == 0 {
                return Err(io::Error::new(io::ErrorKind::WriteZero, "device accepted 0 bytes"));
            }
            offset += n as u64;
            data = &data[n..];
        }
        Ok(())
    }

    /// Loop `read_at` until `buf` is full; error on end of file.
    fn read_exact_at(&self, mut offset: u64, mut buf: &mut [u8]) -> io::Result<()> {
        while !buf.is_empty() {
            let n = self.read_at(offset, buf)?;
            if n == 0 {
                return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "short positional read"));
            }
            offset += n as u64;
            buf = &mut buf[n..];
        }
        Ok(())
    }
}

/// A fault-injectable filesystem: the seam between the kernel's writers
/// and the OS.
pub trait FaultFs: Send + Sync {
    /// Create (or truncate) a read-write file at `path`.
    fn create(&self, path: &Path) -> io::Result<Arc<dyn FaultFile>>;
}

// ---------------------------------------------------------------------
// OsFs: production passthrough
// ---------------------------------------------------------------------

/// The production filesystem: plain `std::fs` positional I/O.
#[derive(Debug, Default, Clone, Copy)]
pub struct OsFs;

struct OsFile(File);

impl FaultFile for OsFile {
    fn write_at(&self, offset: u64, data: &[u8]) -> io::Result<usize> {
        self.0.write_at(data, offset)
    }
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<usize> {
        self.0.read_at(buf, offset)
    }
    fn sync_data(&self) -> io::Result<()> {
        self.0.sync_data()
    }
}

impl FaultFs for OsFs {
    fn create(&self, path: &Path) -> io::Result<Arc<dyn FaultFile>> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let f = OpenOptions::new().read(true).write(true).create(true).truncate(true).open(path)?;
        Ok(Arc::new(OsFile(f)))
    }
}

// ---------------------------------------------------------------------
// SimFs: the seeded torture disk
// ---------------------------------------------------------------------

fn eio(msg: &str) -> io::Error {
    io::Error::other(format!("simulated disk: {msg}"))
}

/// One buffered-but-volatile write.
struct PendingWrite {
    offset: u64,
    data: Vec<u8>,
}

struct SimFileState {
    /// Writes accepted but not yet carried over a sync barrier. Lost (or
    /// torn) at a crash.
    pending: Vec<PendingWrite>,
}

struct SimFile {
    /// The durable layer: a real file holding exactly the synced bytes.
    durable: File,
    state: Mutex<SimFileState>,
    shared: Arc<SimShared>,
}

struct SimShared {
    cfg: FaultConfig,
    rng: Mutex<StdRng>,
    crashed: AtomicBool,
    writes: AtomicU64,
    syncs: AtomicU64,
    /// The live crash point (`u64::MAX` = disarmed). Seeded from
    /// `cfg.crash_after_writes`; re-armable via
    /// [`SimFs::arm_crash_after_writes`].
    armed: AtomicU64,
    files: Mutex<Vec<Arc<SimFile>>>,
}

impl SimShared {
    /// Draw a 1-in-`odds` event (0 odds never fire).
    fn one_in(&self, odds: u64) -> bool {
        odds != 0 && self.rng.lock().unwrap().random_range(0..odds) == 0
    }
}

/// The simulated disk. See the module docs for semantics.
pub struct SimFs {
    shared: Arc<SimShared>,
}

impl SimFs {
    pub fn new(cfg: FaultConfig) -> Arc<SimFs> {
        let rng = StdRng::seed_from_u64(cfg.seed);
        let armed = cfg.crash_after_writes.unwrap_or(u64::MAX);
        Arc::new(SimFs {
            shared: Arc::new(SimShared {
                cfg,
                rng: Mutex::new(rng),
                crashed: AtomicBool::new(false),
                writes: AtomicU64::new(0),
                syncs: AtomicU64::new(0),
                armed: AtomicU64::new(armed),
                files: Mutex::new(Vec::new()),
            }),
        })
    }

    /// Re-arm (or set for the first time) the crash point: the disk
    /// freezes after `n` *further* write calls. Lets a harness run setup
    /// cleanly and only then start the countdown.
    pub fn arm_crash_after_writes(&self, n: u64) {
        self.shared.writes.store(0, Ordering::SeqCst);
        self.shared.armed.store(n, Ordering::SeqCst);
    }

    /// True once the disk has frozen.
    pub fn crashed(&self) -> bool {
        self.shared.crashed.load(Ordering::SeqCst)
    }

    /// (writes, syncs) accepted so far.
    pub fn io_counts(&self) -> (u64, u64) {
        (self.shared.writes.load(Ordering::SeqCst), self.shared.syncs.load(Ordering::SeqCst))
    }

    /// Freeze the disk: keep the durable layer, carry over a seeded-random
    /// subset of the volatile writes (each possibly torn to a prefix),
    /// drop the rest, and fail every subsequent operation. Idempotent.
    pub fn crash(&self) {
        crash_shared(&self.shared);
    }
}

fn crash_shared(shared: &Arc<SimShared>) {
    if shared.crashed.swap(true, Ordering::SeqCst) {
        return;
    }
    let files = shared.files.lock().unwrap();
    let mut rng = shared.rng.lock().unwrap();
    for file in files.iter() {
        let mut st = file.state.lock().unwrap();
        for w in st.pending.drain(..) {
            // 50%: the volatile write never reached the platter (a later
            // write may still land — reordering an fsync would have
            // forbidden). 25%: torn to a random prefix. 25%: fully landed.
            match rng.random_range(0..4u32) {
                0 | 1 => continue,
                2 => {
                    let keep = rng.random_range(0..w.data.len().max(1));
                    let _ = file.durable.write_all_at(&w.data[..keep], w.offset);
                }
                _ => {
                    let _ = file.durable.write_all_at(&w.data, w.offset);
                }
            }
        }
        let _ = file.durable.sync_data();
    }
}

impl FaultFs for SimFs {
    fn create(&self, path: &Path) -> io::Result<Arc<dyn FaultFile>> {
        if self.crashed() {
            return Err(eio("create after crash"));
        }
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let durable =
            OpenOptions::new().read(true).write(true).create(true).truncate(true).open(path)?;
        let file = Arc::new(SimFile {
            durable,
            state: Mutex::new(SimFileState { pending: Vec::new() }),
            shared: Arc::clone(&self.shared),
        });
        self.shared.files.lock().unwrap().push(Arc::clone(&file));
        Ok(file)
    }
}

impl FaultFile for SimFile {
    fn write_at(&self, offset: u64, data: &[u8]) -> io::Result<usize> {
        if self.shared.crashed.load(Ordering::SeqCst) {
            return Err(eio("write after crash"));
        }
        if self.shared.one_in(self.shared.cfg.fail_write_one_in) {
            return Err(eio("injected write failure"));
        }
        let accepted = if !data.is_empty() && self.shared.one_in(self.shared.cfg.short_write_one_in)
        {
            // Short write: accept a non-empty strict prefix when possible.
            let n = self.shared.rng.lock().unwrap().random_range(1..data.len().max(2));
            n.min(data.len())
        } else {
            data.len()
        };
        {
            let mut st = self.state.lock().unwrap();
            // Re-check under the lock: a concurrent crash may have frozen
            // this file between the flag check above and acquiring the
            // lock; a write slipped in afterwards would silently linger in
            // `pending` outside the crash image.
            if self.shared.crashed.load(Ordering::SeqCst) {
                return Err(eio("write after crash"));
            }
            st.pending.push(PendingWrite { offset, data: data[..accepted].to_vec() });
        }
        let writes = self.shared.writes.fetch_add(1, Ordering::SeqCst) + 1;
        if writes >= self.shared.armed.load(Ordering::SeqCst) {
            crash_shared(&self.shared);
        }
        Ok(accepted)
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<usize> {
        if self.shared.crashed.load(Ordering::SeqCst) {
            return Err(eio("read after crash"));
        }
        let st = self.state.lock().unwrap();
        // Logical end of file = durable length extended by pending writes.
        let mut len = self.durable.metadata()?.len();
        for w in &st.pending {
            len = len.max(w.offset + w.data.len() as u64);
        }
        if offset >= len {
            return Ok(0);
        }
        let n = ((len - offset) as usize).min(buf.len());
        let out = &mut buf[..n];
        out.fill(0);
        // Base layer: whatever the durable file holds in this range.
        let durable_len = self.durable.metadata()?.len();
        if offset < durable_len {
            let dn = ((durable_len - offset) as usize).min(n);
            self.durable.read_exact_at(&mut out[..dn], offset)?;
        }
        // Overlay the volatile cache in submission order (last write wins).
        for w in &st.pending {
            let (a, b) = (w.offset, w.offset + w.data.len() as u64);
            let (lo, hi) = (a.max(offset), b.min(offset + n as u64));
            if lo < hi {
                out[(lo - offset) as usize..(hi - offset) as usize]
                    .copy_from_slice(&w.data[(lo - a) as usize..(hi - a) as usize]);
            }
        }
        Ok(n)
    }

    fn sync_data(&self) -> io::Result<()> {
        let mut st = self.state.lock().unwrap();
        // The crash check MUST happen under the state lock. Otherwise a
        // crash can drain (drop) this file's pending writes between an
        // early flag check and the drain below, and the now-empty sync
        // would report Ok — letting the WAL acknowledge a commit whose
        // bytes the crash already discarded.
        if self.shared.crashed.load(Ordering::SeqCst) {
            return Err(eio("sync after crash"));
        }
        for w in st.pending.drain(..) {
            self.durable.write_all_at(&w.data, w.offset)?;
        }
        self.durable.sync_data()?;
        self.shared.syncs.fetch_add(1, Ordering::SeqCst);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dir() -> std::path::PathBuf {
        crate::KernelConfig::for_tests().data_dir
    }

    #[test]
    fn os_fs_roundtrips() {
        let fs = OsFs;
        let f = fs.create(&dir().join("os.bin")).unwrap();
        f.write_all_at(0, b"hello").unwrap();
        f.sync_data().unwrap();
        let mut buf = [0u8; 5];
        f.read_exact_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"hello");
    }

    #[test]
    fn sim_reads_see_unsynced_writes() {
        let fs = SimFs::new(FaultConfig::crash_only(1));
        let f = fs.create(&dir().join("sim.bin")).unwrap();
        f.write_all_at(0, b"volatile").unwrap();
        let mut buf = [0u8; 8];
        f.read_exact_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"volatile", "read-your-writes before any sync");
    }

    #[test]
    fn synced_bytes_survive_a_crash_unsynced_may_not() {
        // Over many seeds: synced data always survives; at least one seed
        // loses (or tears) the unsynced tail.
        let mut lost_tail = false;
        for seed in 0..32 {
            let path = dir().join(format!("c{seed}.bin"));
            let fs = SimFs::new(FaultConfig::crash_only(seed));
            let f = fs.create(&path).unwrap();
            f.write_all_at(0, b"durable!").unwrap();
            f.sync_data().unwrap();
            f.write_all_at(8, b"volatile").unwrap();
            fs.crash();
            assert!(f.write_at(16, b"x").is_err(), "writes fail after crash");
            let bytes = std::fs::read(&path).unwrap();
            assert_eq!(&bytes[..8], b"durable!", "seed {seed}: synced prefix lost");
            if bytes.len() < 16 {
                lost_tail = true;
            }
        }
        assert!(lost_tail, "no seed ever dropped/tore the unsynced tail");
    }

    #[test]
    fn crash_image_is_deterministic_per_seed() {
        let image = |tag: &str| {
            let path = dir().join(format!("det-{tag}.bin"));
            let fs = SimFs::new(FaultConfig::crash_only(99));
            let f = fs.create(&path).unwrap();
            for i in 0..10u64 {
                f.write_all_at(i * 8, &i.to_le_bytes()).unwrap();
            }
            f.sync_data().unwrap();
            for i in 10..20u64 {
                f.write_all_at(i * 8, &i.to_le_bytes()).unwrap();
            }
            fs.crash();
            std::fs::read(&path).unwrap()
        };
        assert_eq!(image("a"), image("b"), "same seed must freeze the same image");
    }

    #[test]
    fn short_writes_are_recovered_by_write_all_at() {
        let fs = SimFs::new(FaultConfig {
            seed: 7,
            crash_after_writes: None,
            short_write_one_in: 2,
            fail_write_one_in: 0,
        });
        let f = fs.create(&dir().join("short.bin")).unwrap();
        let payload: Vec<u8> = (0..255u8).collect();
        f.write_all_at(0, &payload).unwrap();
        f.sync_data().unwrap();
        let mut back = vec![0u8; payload.len()];
        f.read_exact_at(0, &mut back).unwrap();
        assert_eq!(back, payload, "write_all_at must stitch short writes");
    }

    #[test]
    fn crash_after_writes_fires_automatically() {
        let fs = SimFs::new(FaultConfig {
            seed: 3,
            crash_after_writes: Some(5),
            short_write_one_in: 0,
            fail_write_one_in: 0,
        });
        let f = fs.create(&dir().join("auto.bin")).unwrap();
        let mut failed = false;
        for i in 0..10u64 {
            if f.write_at(i * 4, b"abcd").is_err() {
                failed = true;
                break;
            }
        }
        assert!(failed && fs.crashed(), "the armed crash point must fire");
    }

    #[test]
    fn injected_write_failures_do_not_land_bytes() {
        let fs = SimFs::new(FaultConfig {
            seed: 11,
            crash_after_writes: None,
            short_write_one_in: 0,
            fail_write_one_in: 1, // every write fails
        });
        let path = dir().join("fail.bin");
        let f = fs.create(&path).unwrap();
        assert!(f.write_at(0, b"nope").is_err());
        f.sync_data().unwrap();
        assert_eq!(std::fs::read(&path).unwrap().len(), 0);
    }
}
