//! Portable software-prefetch shim for the interleaved B-tree descent.
//!
//! The batch descent (see `phoebe_storage::btree::DescentCursor`) knows
//! which node it will touch *next* before it suspends, so it asks the CPU
//! to start pulling that cache line while a sibling descent runs. On
//! x86_64 this lowers to `PREFETCHT0`; elsewhere it compiles to nothing —
//! the interleaving still overlaps buffer-pool faults, it just loses the
//! cache-miss overlap.
//!
//! Prefetching is a pure performance hint: it never faults (the
//! instruction ignores invalid addresses at the architectural level), but
//! Rust still requires the pointer to be valid for the `unsafe` call, so
//! callers pass references, never raw guesses.

/// Hint the CPU to pull the cache line containing `t` into all cache
/// levels (temporal locality, `_MM_HINT_T0`). No-op off x86_64.
#[inline(always)]
pub fn prefetch_read<T>(t: &T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: `t` is a live reference, so the address is valid for the
    // lifetime of the call; PREFETCHT0 performs no memory access that can
    // fault and has no architectural side effects beyond the cache hint.
    unsafe {
        core::arch::x86_64::_mm_prefetch(
            t as *const T as *const i8,
            core::arch::x86_64::_MM_HINT_T0,
        );
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = t;
}

/// Prefetch `lines` consecutive 64-byte cache lines starting at `t`.
/// Used for page headers where the first few lines (latch word + slot
/// directory) are always touched together. `lines` is clamped to 4 —
/// beyond that the hint costs more issue slots than it saves.
#[inline(always)]
pub fn prefetch_read_span<T>(t: &T, lines: usize) {
    let base = t as *const T as *const u8;
    for i in 0..lines.min(4) {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: same argument as `prefetch_read`; even if `t` is
        // smaller than `lines * 64` bytes the instruction cannot fault,
        // and we derive the address from a live reference.
        unsafe {
            core::arch::x86_64::_mm_prefetch(
                base.add(i * 64) as *const i8,
                core::arch::x86_64::_MM_HINT_T0,
            );
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = (base, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetch_is_a_safe_noop_semantically() {
        let v = [0u8; 256];
        prefetch_read(&v);
        prefetch_read_span(&v, 4);
        prefetch_read_span(&v, 64); // clamped internally
        assert_eq!(v, [0u8; 256]);
    }
}
