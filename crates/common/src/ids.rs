//! Strongly typed identifiers shared across the kernel.
//!
//! The most interesting type is [`Xid`], which reproduces the paper's
//! transaction-identifier layout (§6.1): a 64-bit value whose most
//! significant bit is always set, whose middle 62 bits carry the start
//! timestamp drawn from the global logical clock, and whose least
//! significant bit is reserved for future use. Because the MSB of an XID is
//! always 1 while commit timestamps are plain 62-bit values (MSB 0), a
//! single `u64` field such as an UNDO log's `ets` can hold *either* an XID
//! (transaction still in flight) *or* a commit timestamp, distinguished by
//! the sign bit alone. That property is what makes the paper's visibility
//! check (Algorithm 1) a couple of integer comparisons.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A logical timestamp drawn from the 62-bit global clock (§6.1).
///
/// Timestamps order both transaction starts (snapshots) and commits. The
/// top two bits are always zero so a timestamp can never be confused with
/// an [`Xid`].
pub type Timestamp = u64;

/// Maximum representable 62-bit timestamp.
pub const MAX_TIMESTAMP: Timestamp = (1u64 << 62) - 1;

/// A transaction identifier with the paper's bit layout (§6.1):
/// `MSB=1 | 62-bit start timestamp | 1 reserved bit`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Xid(u64);

impl Xid {
    const FLAG: u64 = 1u64 << 63;

    /// Build an XID from a start timestamp taken from the global clock.
    #[inline]
    pub fn from_start_ts(start_ts: Timestamp) -> Self {
        debug_assert!(start_ts <= MAX_TIMESTAMP, "timestamp exceeds 62 bits");
        Xid(Self::FLAG | (start_ts << 1))
    }

    /// The raw 64-bit representation (MSB set).
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Rebuild from a raw value previously produced by [`Xid::raw`].
    ///
    /// Returns `None` if the value does not carry the XID flag bit, i.e. it
    /// is a plain commit timestamp.
    #[inline]
    pub fn from_raw(raw: u64) -> Option<Self> {
        (raw & Self::FLAG != 0).then_some(Xid(raw))
    }

    /// The 62-bit start timestamp embedded in this XID.
    #[inline]
    pub fn start_ts(self) -> Timestamp {
        (self.0 & !Self::FLAG) >> 1
    }

    /// True if `raw` (an `ets`/`sts` field) holds an XID rather than a
    /// commit timestamp — the single-bit test Algorithm 1 relies on.
    #[inline]
    pub fn is_xid(raw: u64) -> bool {
        raw & Self::FLAG != 0
    }
}

impl fmt::Debug for Xid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Xid({})", self.start_ts())
    }
}

impl fmt::Display for Xid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.start_ts())
    }
}

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $inner:ty, $prefix:literal) => {
        $(#[$meta])*
        #[derive(
            Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
        )]
        pub struct $name(pub $inner);

        impl $name {
            /// The raw inner value.
            #[inline]
            pub fn raw(self) -> $inner {
                self.0
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$inner> for $name {
            fn from(v: $inner) -> Self {
                $name(v)
            }
        }
    };
}

id_type!(
    /// The internally maintained, monotonically increasing row identifier
    /// used as the table B-Tree key (§5.1). Row ids are never reused, which
    /// is what lets the frozen layer be described by a single
    /// `max_frozen_row_id` watermark.
    RowId, u64, "r"
);

id_type!(
    /// Identifier of an on-disk page slot in the Data Page File (§5.2).
    PageId, u64, "p"
);

id_type!(
    /// Identifier of a relation (table or secondary index). Each relation is
    /// one B-Tree (§5.1).
    TableId, u32, "t"
);

id_type!(
    /// Index of a worker thread in the co-routine pool (§7.1).
    WorkerId, u16, "w"
);

id_type!(
    /// Global sequence number on WAL records (§8): monotonically increasing
    /// but *not* unique; bumped on cross-page modifications and used to
    /// order recovery across per-slot log files.
    Gsn, u64, "g"
);

id_type!(
    /// Log sequence number, strictly monotonic *within one WAL writer* (§8).
    Lsn, u64, "l"
);

/// A task slot address: which worker owns it and which slot within that
/// worker (§7.1). Task slots are the unit the paper attaches WAL writers,
/// tuple locks, and UNDO arenas to.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize, Deserialize)]
pub struct SlotId {
    pub worker: WorkerId,
    pub slot: u16,
}

impl SlotId {
    pub fn new(worker: WorkerId, slot: u16) -> Self {
        SlotId { worker, slot }
    }

    /// Flatten to a dense index given a uniform `slots_per_worker`.
    #[inline]
    pub fn flat(self, slots_per_worker: usize) -> usize {
        self.worker.0 as usize * slots_per_worker + self.slot as usize
    }
}

impl fmt::Display for SlotId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}s{}", self.worker, self.slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xid_roundtrips_start_timestamp() {
        for ts in [0, 1, 7, 1 << 20, MAX_TIMESTAMP] {
            let xid = Xid::from_start_ts(ts);
            assert_eq!(xid.start_ts(), ts);
            assert!(Xid::is_xid(xid.raw()));
            assert_eq!(Xid::from_raw(xid.raw()), Some(xid));
        }
    }

    #[test]
    fn timestamps_are_never_mistaken_for_xids() {
        for ts in [0u64, 1, 42, MAX_TIMESTAMP] {
            assert!(!Xid::is_xid(ts));
            assert_eq!(Xid::from_raw(ts), None);
        }
    }

    #[test]
    fn xid_ordering_follows_start_timestamp() {
        let a = Xid::from_start_ts(5);
        let b = Xid::from_start_ts(9);
        assert!(a < b);
    }

    #[test]
    fn slot_id_flattens_densely() {
        let slots_per_worker = 4;
        let mut seen = std::collections::HashSet::new();
        for w in 0..3u16 {
            for s in 0..4u16 {
                let id = SlotId::new(WorkerId(w), s);
                assert!(seen.insert(id.flat(slots_per_worker)));
            }
        }
        assert_eq!(seen.len(), 12);
        assert_eq!(seen.iter().max(), Some(&11));
    }

    #[test]
    fn display_formats_are_stable() {
        assert_eq!(RowId(7).to_string(), "r7");
        assert_eq!(SlotId::new(WorkerId(2), 3).to_string(), "w2s3");
        assert_eq!(Xid::from_start_ts(10).to_string(), "x10");
    }
}
