//! Shared substrate for PhoebeDB-RS.
//!
//! This crate holds the vocabulary types used by every other crate in the
//! workspace: strongly typed identifiers ([`ids`]), the error type
//! ([`error`]), kernel configuration ([`config`]), and the per-component
//! cycle accounting used to reproduce the paper's instruction-breakdown
//! experiment ([`metrics`]).
//!
//! Nothing in here knows about pages, transactions, or logs; it only defines
//! the shared language the rest of the kernel speaks.

pub mod config;
pub mod error;
pub mod fault;
pub mod hist;
pub mod ids;
pub mod json;
pub mod metrics;
pub mod prefetch;
pub mod snapshot;
pub mod sync;
pub mod telemetry;
pub mod trace;

pub use config::{KernelConfig, KernelConfigBuilder, TelemetryConfig, TraceConfig, WatchdogConfig};
pub use error::{PhoebeError, Result};
pub use fault::{FaultConfig, FaultFile, FaultFs, OsFs, SimFs};
pub use hist::{HistogramSnapshot, LatencySite};
pub use ids::{Gsn, Lsn, PageId, RowId, SlotId, TableId, Timestamp, WorkerId, Xid};
pub use json::Json;
pub use prefetch::{prefetch_read, prefetch_read_span};
pub use snapshot::SnapshotList;
pub use telemetry::{IncidentLog, PromText, TelemetryProvider, TelemetryServer};
pub use trace::{EventKind, TraceEvent, Tracer};
