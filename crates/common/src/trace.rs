//! The kernel flight recorder: lock-free per-worker event rings with
//! Chrome trace-event / Perfetto JSON export.
//!
//! Aggregate histograms ([`crate::hist`]) answer *how long* an operation
//! took; the flight recorder answers *where a task sat* — the event-level
//! timeline that scheduler and group-commit diagnosis needs. Every
//! subsystem emits compact 32-byte binary events into a fixed-capacity
//! ring per worker (plus one for external threads, mirroring the metric
//! shards). Rings overwrite their oldest entries, so the recorder always
//! holds the most recent window of kernel history and never allocates or
//! blocks on the hot path.
//!
//! Overhead contract: with tracing disabled, every emit site costs exactly
//! one relaxed atomic load (the [`Tracer::enabled`] check) — no branches
//! into ring code, no timestamps taken. Enabled, an emit is one
//! monotonic-clock read, one relaxed `fetch_add` to claim a ring index,
//! four relaxed word stores and one release store of the slot sequence.
//!
//! Drain semantics: [`Tracer::drain`] walks each ring from oldest to
//! newest and keeps only slots whose sequence number matches the claimed
//! index — an entry being overwritten mid-read is simply skipped, so a
//! drain concurrent with emission loses torn entries instead of producing
//! garbage. Draining does not consume: the rings keep filling.

use crate::metrics::current_worker;
use crate::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::fmt;
use std::time::Instant;

/// Event kinds emitted across the kernel. The discriminant is stored in
/// the packed event word, so variants are append-only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum EventKind {
    /// A co-routine was submitted to the scheduler (instant).
    TaskSpawn = 1,
    /// One poll of a seated co-routine (span; `a` = duration ns).
    TaskPoll = 2,
    /// A seated co-routine ran to completion (instant).
    TaskDone = 3,
    /// A co-routine yielded (instant; `a` = 0 high urgency, 1 low).
    Yield = 4,
    /// The worker parked with nothing runnable (span; `a` = duration ns).
    Park = 5,
    /// The worker woke from a park (instant).
    Unpark = 6,
    /// Global-queue depth sampled at steal time (counter; `a` = depth).
    QueueDepth = 7,
    /// Transaction began (instant; `b` = xid).
    TxnBegin = 8,
    /// Transaction committed (span; `a` = duration ns, `b` = xid).
    TxnCommit = 9,
    /// Transaction rolled back (span; `a` = duration ns, `b` = xid).
    TxnAbort = 10,
    /// Stall on another writer's tuple lock (span; `b` = xid).
    LockWait = 11,
    /// Cold page fault: Data Page File read (span; `b` = page id).
    BufferFault = 12,
    /// Page eviction: write-back + unswizzle (span; `b` = page id).
    Eviction = 13,
    /// Optimistic latch validation failed, descent restarted (instant).
    LatchRestart = 14,
    /// One group-commit round (span; `a` = duration ns, `b` = bytes).
    GroupCommitBatch = 15,
    /// One I/O wave inside a round (span; `b` = 1 writes, 2 fsyncs).
    FlushWave = 16,
    /// RFA remote-dependency wait at commit (span; `b` = waited-for GSN).
    RfaRemoteWait = 17,
    /// WAL replay at `Database::open` (span; `b` = records replayed).
    RecoveryReplay = 18,
    /// One interleaved multi-key batch (span; `a` = duration ns,
    /// `b` = key count).
    BatchGet = 19,
}

impl EventKind {
    /// Stable display name (the Chrome trace event `name` field).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::TaskSpawn => "spawn",
            EventKind::TaskPoll => "poll",
            EventKind::TaskDone => "task_done",
            EventKind::Yield => "yield",
            EventKind::Park => "park",
            EventKind::Unpark => "unpark",
            EventKind::QueueDepth => "global_queue_depth",
            EventKind::TxnBegin => "txn_begin",
            EventKind::TxnCommit => "commit",
            EventKind::TxnAbort => "abort",
            EventKind::LockWait => "lock_wait",
            EventKind::BufferFault => "buffer_fault",
            EventKind::Eviction => "eviction",
            EventKind::LatchRestart => "latch_restart",
            EventKind::GroupCommitBatch => "group_commit",
            EventKind::FlushWave => "flush_wave",
            EventKind::RfaRemoteWait => "rfa_remote_wait",
            EventKind::RecoveryReplay => "recovery_replay",
            EventKind::BatchGet => "batch_get",
        }
    }

    fn from_u16(v: u16) -> Option<EventKind> {
        Some(match v {
            1 => EventKind::TaskSpawn,
            2 => EventKind::TaskPoll,
            3 => EventKind::TaskDone,
            4 => EventKind::Yield,
            5 => EventKind::Park,
            6 => EventKind::Unpark,
            7 => EventKind::QueueDepth,
            8 => EventKind::TxnBegin,
            9 => EventKind::TxnCommit,
            10 => EventKind::TxnAbort,
            11 => EventKind::LockWait,
            12 => EventKind::BufferFault,
            13 => EventKind::Eviction,
            14 => EventKind::LatchRestart,
            15 => EventKind::GroupCommitBatch,
            16 => EventKind::FlushWave,
            17 => EventKind::RfaRemoteWait,
            18 => EventKind::RecoveryReplay,
            19 => EventKind::BatchGet,
            _ => return None,
        })
    }

    /// Which per-worker Perfetto track this kind renders on.
    fn track(self) -> Track {
        match self {
            EventKind::TaskSpawn
            | EventKind::TaskPoll
            | EventKind::TaskDone
            | EventKind::Yield
            | EventKind::Park
            | EventKind::Unpark
            | EventKind::QueueDepth => Track::Sched,
            EventKind::TxnBegin
            | EventKind::TxnCommit
            | EventKind::TxnAbort
            | EventKind::LockWait => Track::Txn,
            EventKind::BufferFault
            | EventKind::Eviction
            | EventKind::LatchRestart
            | EventKind::BatchGet => Track::Storage,
            EventKind::GroupCommitBatch
            | EventKind::FlushWave
            | EventKind::RfaRemoteWait
            | EventKind::RecoveryReplay => Track::Wal,
        }
    }

    /// Spans carry a duration in `a`; everything else is an instant or a
    /// counter sample.
    fn is_span(self) -> bool {
        matches!(
            self,
            EventKind::TaskPoll
                | EventKind::Park
                | EventKind::TxnCommit
                | EventKind::TxnAbort
                | EventKind::LockWait
                | EventKind::BufferFault
                | EventKind::Eviction
                | EventKind::GroupCommitBatch
                | EventKind::FlushWave
                | EventKind::RfaRemoteWait
                | EventKind::RecoveryReplay
                | EventKind::BatchGet
        )
    }
}

/// The four per-worker tracks in the exported timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Track {
    Sched = 0,
    Txn = 1,
    Storage = 2,
    Wal = 3,
}

const TRACK_NAMES: [&str; 4] = ["sched", "txn", "storage", "wal"];

/// One recorded event: exactly 32 bytes, packed into four `u64` words in
/// the ring so concurrent access is plain atomics (no `UnsafeCell`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(C)]
pub struct TraceEvent {
    /// Nanoseconds since the tracer's epoch.
    pub ts_ns: u64,
    /// Kind-specific payload (span duration, queue depth, urgency).
    pub a: u64,
    /// Kind-specific payload (xid, page id, byte count).
    pub b: u64,
    /// Task-slot index on the emitting worker (0 when not slot-scoped).
    pub slot: u32,
    /// Discriminant of [`EventKind`].
    pub kind: u16,
    _pad: u16,
}

const _: () = assert!(std::mem::size_of::<TraceEvent>() == 32, "TraceEvent must stay 32 bytes");

impl TraceEvent {
    /// The decoded kind, or `None` for a corrupt/unknown discriminant
    /// (possible only if a torn slot slipped past the sequence check).
    pub fn kind(&self) -> Option<EventKind> {
        EventKind::from_u16(self.kind)
    }

    fn pack(&self) -> [u64; 4] {
        [self.ts_ns, self.a, self.b, ((self.slot as u64) << 32) | self.kind as u64]
    }

    fn unpack(w: [u64; 4]) -> TraceEvent {
        TraceEvent {
            ts_ns: w[0],
            a: w[1],
            b: w[2],
            slot: (w[3] >> 32) as u32,
            kind: w[3] as u16,
            _pad: 0,
        }
    }
}

/// One ring slot: the claimed sequence plus the packed event words. The
/// writer publishes `seq = index + 1` with release ordering after the
/// words; a reader accepts the slot only when the sequence matches the
/// index it expects, which filters slots that are empty, torn, or already
/// overwritten by a later lap.
struct RingSlot {
    seq: AtomicU64,
    w: [AtomicU64; 4],
}

impl Default for RingSlot {
    fn default() -> Self {
        RingSlot { seq: AtomicU64::new(0), w: Default::default() }
    }
}

/// A fixed-capacity, lock-free, overwrite-on-wrap event ring.
pub struct TraceRing {
    head: AtomicU64,
    mask: u64,
    slots: Box<[RingSlot]>,
}

impl TraceRing {
    fn new(capacity: usize) -> TraceRing {
        let cap = capacity.max(2).next_power_of_two();
        let mut slots = Vec::with_capacity(cap);
        slots.resize_with(cap, RingSlot::default);
        TraceRing { head: AtomicU64::new(0), mask: cap as u64 - 1, slots: slots.into_boxed_slice() }
    }

    #[inline]
    fn emit(&self, ev: &TraceEvent) {
        // ORDERING: Relaxed claim + relaxed word stores are safe because
        // readers accept a slot only via the release store of `seq` below
        // (paired with the acquire loads in `drain`); the claim itself only
        // needs atomicity, not ordering, to hand out unique indices.
        let idx = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(idx & self.mask) as usize];
        let w = ev.pack();
        for (dst, src) in slot.w.iter().zip(w) {
            dst.store(src, Ordering::Relaxed);
        }
        slot.seq.store(idx + 1, Ordering::Release);
    }

    /// Collect the ring's current contents, oldest first. Entries being
    /// overwritten concurrently are skipped, never torn.
    fn drain(&self, out: &mut Vec<TraceEvent>) {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.mask + 1;
        let start = head.saturating_sub(cap);
        for idx in start..head {
            let slot = &self.slots[(idx & self.mask) as usize];
            if slot.seq.load(Ordering::Acquire) != idx + 1 {
                continue;
            }
            // ORDERING: relaxed word loads are bracketed by the two acquire
            // `seq` checks; any concurrent overwrite bumps `seq` first
            // (release), so a torn read is always detected and skipped.
            let w = [
                slot.w[0].load(Ordering::Relaxed),
                slot.w[1].load(Ordering::Relaxed),
                slot.w[2].load(Ordering::Relaxed),
                slot.w[3].load(Ordering::Relaxed),
            ];
            // Re-check: a writer lapping us mid-read bumps the sequence.
            if slot.seq.load(Ordering::Acquire) != idx + 1 {
                continue;
            }
            out.push(TraceEvent::unpack(w));
        }
    }

    /// Total events ever emitted into this ring (including overwritten).
    pub fn emitted(&self) -> u64 {
        // ORDERING: a monotonic statistic; staleness is acceptable.
        self.head.load(Ordering::Relaxed)
    }
}

/// The kernel's flight-recorder handle: one event ring per worker plus one
/// for external threads (the same sharding as [`crate::metrics::Metrics`]).
pub struct Tracer {
    enabled: AtomicBool,
    epoch: Instant,
    rings: Box<[TraceRing]>,
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.enabled())
            .field("rings", &self.rings.len())
            .finish()
    }
}

impl Tracer {
    /// A recorder for `workers` pool threads with `ring_capacity` events
    /// per ring (rounded up to a power of two).
    pub fn new(workers: usize, ring_capacity: usize) -> Tracer {
        let rings = (0..workers + 1).map(|_| TraceRing::new(ring_capacity)).collect();
        Tracer { enabled: AtomicBool::new(true), epoch: Instant::now(), rings }
    }

    /// The zero-overhead stand-in installed when tracing is off: every
    /// emit site pays one relaxed load and returns.
    pub fn disabled() -> Tracer {
        Tracer { enabled: AtomicBool::new(false), epoch: Instant::now(), rings: Box::new([]) }
    }

    /// Whether events are being recorded — one relaxed atomic load.
    #[inline]
    pub fn enabled(&self) -> bool {
        // ORDERING: the flag is set once at construction and never guards
        // other memory; relaxed keeps the disabled-path cost to one load.
        self.enabled.load(Ordering::Relaxed)
    }

    /// Worker count this tracer shards over (rings minus the external one).
    pub fn workers(&self) -> usize {
        self.rings.len().saturating_sub(1)
    }

    /// Nanoseconds since the tracer's epoch.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    #[inline]
    fn ring(&self) -> &TraceRing {
        let last = self.rings.len() - 1;
        let idx = current_worker().unwrap_or(last);
        &self.rings[if idx < last { idx } else { last }]
    }

    /// Record an instantaneous event on the calling thread's ring.
    #[inline]
    pub fn instant(&self, kind: EventKind, slot: u32, a: u64, b: u64) {
        if !self.enabled() {
            return;
        }
        self.ring().emit(&TraceEvent {
            ts_ns: self.now_ns(),
            a,
            b,
            slot,
            kind: kind as u16,
            _pad: 0,
        });
    }

    /// Open a span: returns the start timestamp to pass to
    /// [`Tracer::span_end`] (0 when disabled; `span_end` ignores it then).
    #[inline]
    pub fn span_begin(&self) -> u64 {
        if self.enabled() {
            self.now_ns()
        } else {
            0
        }
    }

    /// Close a span opened with [`Tracer::span_begin`].
    #[inline]
    pub fn span_end(&self, kind: EventKind, slot: u32, start_ns: u64, b: u64) {
        if !self.enabled() {
            return;
        }
        let dur = self.now_ns().saturating_sub(start_ns);
        self.ring().emit(&TraceEvent {
            ts_ns: start_ns,
            a: dur,
            b,
            slot,
            kind: kind as u16,
            _pad: 0,
        });
    }

    /// Record a span that just finished and took `dur_ns` (for call sites
    /// that already hold an `Instant`-based duration).
    #[inline]
    pub fn span_dur(&self, kind: EventKind, slot: u32, dur_ns: u64, b: u64) {
        if !self.enabled() {
            return;
        }
        let now = self.now_ns();
        self.ring().emit(&TraceEvent {
            ts_ns: now.saturating_sub(dur_ns),
            a: dur_ns,
            b,
            slot,
            kind: kind as u16,
            _pad: 0,
        });
    }

    /// RAII span: closes with [`Tracer::span_end`] on drop (early returns
    /// and `?` included).
    #[inline]
    pub fn span_guard(&self, kind: EventKind, slot: u32, b: u64) -> SpanGuard<'_> {
        SpanGuard { tracer: self, kind, slot, b, start_ns: self.span_begin() }
    }

    /// Snapshot every ring: `(worker_index, events)` with the external
    /// ring reported as `workers()`. Events are oldest-first per ring.
    pub fn drain(&self) -> Vec<(usize, Vec<TraceEvent>)> {
        let mut out = Vec::with_capacity(self.rings.len());
        for (i, ring) in self.rings.iter().enumerate() {
            let mut events = Vec::new();
            ring.drain(&mut events);
            out.push((i, events));
        }
        out
    }

    /// Total events emitted across all rings (including overwritten ones).
    pub fn total_emitted(&self) -> u64 {
        self.rings.iter().map(|r| r.emitted()).sum()
    }

    /// Export the current ring contents as Chrome trace-event JSON
    /// (loadable at `ui.perfetto.dev` or `chrome://tracing`).
    ///
    /// Layout: one process, four named threads per worker —
    /// `worker{N}/sched`, `/txn`, `/storage`, `/wal` — plus `external/*`
    /// for non-pool threads. Spans render as complete (`"X"`) events,
    /// yields and restarts as instants (`"i"`), queue depth and
    /// group-commit batch bytes as counter (`"C"`) tracks.
    pub fn export_chrome_json(&self) -> String {
        let drained = self.drain();
        let workers = self.workers();
        let mut out = String::with_capacity(64 * 1024);
        out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
        let mut first = true;
        let push = |out: &mut String, first: &mut bool, ev: String| {
            if !*first {
                out.push(',');
            }
            *first = false;
            out.push_str(&ev);
        };
        push(
            &mut out,
            &mut first,
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
             \"args\":{\"name\":\"phoebedb\"}}"
                .to_string(),
        );
        // Thread-name metadata: one row per (ring, track) that has events.
        let mut used = vec![[false; 4]; self.rings.len()];
        for (ring, events) in &drained {
            for ev in events {
                if let Some(kind) = ev.kind() {
                    used[*ring][kind.track() as usize] = true;
                }
            }
        }
        for (ring, tracks) in used.iter().enumerate() {
            let who = if ring < workers { format!("worker{ring}") } else { "external".to_string() };
            for (t, used) in tracks.iter().enumerate() {
                if !used {
                    continue;
                }
                let tid = ring * 4 + t;
                push(
                    &mut out,
                    &mut first,
                    format!(
                        "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
                         \"args\":{{\"name\":\"{who}/{}\"}}}}",
                        TRACK_NAMES[t]
                    ),
                );
            }
        }
        // Events, merged and sorted by timestamp for a deterministic file.
        let mut all: Vec<(usize, TraceEvent)> = Vec::new();
        for (ring, events) in drained {
            all.extend(events.into_iter().map(|e| (ring, e)));
        }
        all.sort_by_key(|(_, e)| e.ts_ns);
        for (ring, ev) in &all {
            let Some(kind) = ev.kind() else { continue };
            let tid = ring * 4 + kind.track() as usize;
            let ts = ev.ts_ns as f64 / 1_000.0; // Chrome wants microseconds
            match kind {
                EventKind::QueueDepth => {
                    push(
                        &mut out,
                        &mut first,
                        format!(
                            "{{\"name\":\"global_queue_depth\",\"ph\":\"C\",\"pid\":1,\
                             \"tid\":{tid},\"ts\":{ts:.3},\"args\":{{\"depth\":{}}}}}",
                            ev.a
                        ),
                    );
                }
                EventKind::Yield => {
                    let urgency = if ev.a == 0 { "high" } else { "low" };
                    push(
                        &mut out,
                        &mut first,
                        format!(
                            "{{\"name\":\"yield\",\"ph\":\"i\",\"pid\":1,\"tid\":{tid},\
                             \"ts\":{ts:.3},\"s\":\"t\",\"args\":{{\"slot\":{},\
                             \"urgency\":\"{urgency}\"}}}}",
                            ev.slot
                        ),
                    );
                }
                k if k.is_span() => {
                    let dur = ev.a as f64 / 1_000.0;
                    push(
                        &mut out,
                        &mut first,
                        format!(
                            "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\
                             \"ts\":{ts:.3},\"dur\":{dur:.3},\"args\":{{\"slot\":{},\
                             \"b\":{}}}}}",
                            k.name(),
                            ev.slot,
                            ev.b
                        ),
                    );
                    // Batch sizes double as a counter track so the Perfetto
                    // timeline shows group-commit batching pressure.
                    if kind == EventKind::GroupCommitBatch {
                        push(
                            &mut out,
                            &mut first,
                            format!(
                                "{{\"name\":\"wal_batch_bytes\",\"ph\":\"C\",\"pid\":1,\
                                 \"tid\":{tid},\"ts\":{ts:.3},\"args\":{{\"bytes\":{}}}}}",
                                ev.b
                            ),
                        );
                    }
                }
                k => {
                    push(
                        &mut out,
                        &mut first,
                        format!(
                            "{{\"name\":\"{}\",\"ph\":\"i\",\"pid\":1,\"tid\":{tid},\
                             \"ts\":{ts:.3},\"s\":\"t\",\"args\":{{\"slot\":{},\
                             \"b\":{}}}}}",
                            k.name(),
                            ev.slot,
                            ev.b
                        ),
                    );
                }
            }
        }
        out.push_str("]}");
        out
    }

    /// Export to a file (see [`Tracer::export_chrome_json`]).
    pub fn write_chrome_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.export_chrome_json())
    }
}

/// RAII guard from [`Tracer::span_guard`].
pub struct SpanGuard<'a> {
    tracer: &'a Tracer,
    kind: EventKind,
    slot: u32,
    b: u64,
    start_ns: u64,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.tracer.span_end(self.kind, self.slot, self.start_ns, self.b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_is_exactly_32_bytes() {
        assert_eq!(std::mem::size_of::<TraceEvent>(), 32);
    }

    #[test]
    fn pack_unpack_roundtrips() {
        let ev = TraceEvent {
            ts_ns: u64::MAX - 7,
            a: 42,
            b: u64::MAX,
            slot: 0xDEAD_BEEF,
            kind: EventKind::GroupCommitBatch as u16,
            _pad: 0,
        };
        assert_eq!(TraceEvent::unpack(ev.pack()), ev);
        assert_eq!(ev.kind(), Some(EventKind::GroupCommitBatch));
    }

    #[test]
    fn every_kind_roundtrips_through_u16() {
        for kind in [
            EventKind::TaskSpawn,
            EventKind::TaskPoll,
            EventKind::TaskDone,
            EventKind::Yield,
            EventKind::Park,
            EventKind::Unpark,
            EventKind::QueueDepth,
            EventKind::TxnBegin,
            EventKind::TxnCommit,
            EventKind::TxnAbort,
            EventKind::LockWait,
            EventKind::BufferFault,
            EventKind::Eviction,
            EventKind::LatchRestart,
            EventKind::GroupCommitBatch,
            EventKind::FlushWave,
            EventKind::RfaRemoteWait,
            EventKind::RecoveryReplay,
            EventKind::BatchGet,
        ] {
            assert_eq!(EventKind::from_u16(kind as u16), Some(kind), "{kind:?}");
        }
        assert_eq!(EventKind::from_u16(0), None);
        assert_eq!(EventKind::from_u16(999), None);
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        assert!(!t.enabled());
        t.instant(EventKind::Yield, 0, 1, 0);
        t.span_dur(EventKind::TxnCommit, 0, 100, 0);
        let s = t.span_begin();
        t.span_end(EventKind::TaskPoll, 0, s, 0);
        drop(t.span_guard(EventKind::BufferFault, 0, 0));
        assert_eq!(t.total_emitted(), 0);
        assert!(t.drain().iter().all(|(_, evs)| evs.is_empty()));
    }

    #[test]
    fn export_is_valid_shape_and_sorted() {
        let t = Tracer::new(1, 16);
        t.instant(EventKind::QueueDepth, 0, 3, 0);
        t.span_dur(EventKind::TxnCommit, 2, 1_000, 7);
        t.instant(EventKind::Yield, 1, 0, 0);
        let json = t.export_chrome_json();
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("global_queue_depth"));
        assert!(json.contains("\"urgency\":\"high\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert_eq!(json.matches("thread_name").count(), 2, "sched + txn tracks: {json}");
    }
}
