//! Lock-free read-mostly snapshot lists (a dependency-free stand-in for
//! `arc-swap`).
//!
//! Catalog state — the index list of a table, the table list of a
//! database — is read on every operation but changes only at DDL time.
//! Guarding it with an `RwLock` puts an atomic RMW (and, for the index
//! list, a `Vec` clone) on every reader. [`SnapshotList`] instead keeps
//! the current state as an immutable heap snapshot behind one
//! `AtomicPtr`: readers take one acquire load and borrow the slice
//! directly; writers build a fresh snapshot under a mutex and publish it
//! with a store.
//!
//! Reclamation is deliberately simple instead of epoch-based: superseded
//! snapshots are parked in a retired list owned by the `SnapshotList` and
//! freed only on drop. A reader's `&[T]` borrows from `&self`, and drop
//! takes `&mut self`, so the borrow checker — not a deferred-reclamation
//! scheme — proves no reader can outlive the snapshot it sees. Memory is
//! bounded by the number of *writes* (DDL statements), not reads.

use crate::sync::atomic::{AtomicPtr, Ordering};
use crate::sync::Mutex;

/// A read-mostly list with lock-free snapshot reads.
pub struct SnapshotList<T> {
    current: AtomicPtr<Vec<T>>,
    /// Superseded snapshots, kept alive until drop; doubles as the writer
    /// serialization lock.
    retired: Mutex<Vec<*mut Vec<T>>>,
}

// SAFETY: the raw pointers are owning handles to `Vec<T>` managed
// exclusively by this type; they carry no thread affinity beyond the
// element type's, so sending the list is sending its `T`s.
unsafe impl<T: Send> Send for SnapshotList<T> {}
// SAFETY: shared access hands out `&[T]` (requires `T: Sync`) and the
// publish path moves `T`s built on the writer thread (requires `T: Send`).
unsafe impl<T: Send + Sync> Sync for SnapshotList<T> {}

impl<T> SnapshotList<T> {
    pub fn new(initial: Vec<T>) -> Self {
        SnapshotList {
            current: AtomicPtr::new(Box::into_raw(Box::new(initial))),
            retired: Mutex::new(Vec::new()),
        }
    }

    /// The current snapshot: one acquire load, no lock, no clone. The
    /// borrow is tied to `&self`, which is what keeps retired snapshots
    /// from being freed under a reader.
    #[inline]
    pub fn load(&self) -> &[T] {
        // SAFETY: `current` always points to a live boxed Vec — publishers
        // retire the old snapshot instead of freeing it, and freeing only
        // happens in drop (`&mut self`), which cannot overlap this borrow.
        unsafe { &*self.current.load(Ordering::Acquire) }
    }

    pub fn len(&self) -> usize {
        self.load().len()
    }

    pub fn is_empty(&self) -> bool {
        self.load().is_empty()
    }
}

impl<T: Clone> SnapshotList<T> {
    /// Publish a new snapshot built by `f` from a copy of the current one.
    /// Writers serialize on the retired-list mutex, so concurrent updates
    /// never lose each other.
    pub fn update(&self, f: impl FnOnce(&mut Vec<T>)) {
        let mut retired = self.retired.lock();
        let old = self.current.load(Ordering::Acquire);
        // SAFETY: same liveness argument as `load`; the mutex additionally
        // guarantees no concurrent publisher invalidates `old`.
        let mut next = unsafe { (*old).clone() };
        f(&mut next);
        self.current.store(Box::into_raw(Box::new(next)), Ordering::Release);
        retired.push(old);
    }

    /// Append one element (the common DDL case).
    pub fn push(&self, item: T) {
        self.update(|v| v.push(item));
    }
}

impl<T> Drop for SnapshotList<T> {
    fn drop(&mut self) {
        // SAFETY: drop has exclusive access; every pointer in `retired`
        // plus `current` is a distinct Box created by this type.
        unsafe {
            drop(Box::from_raw(self.current.load(Ordering::Acquire)));
            for p in self.retired.get_mut().drain(..) {
                drop(Box::from_raw(p));
            }
        }
    }
}

impl<T> Default for SnapshotList<T> {
    fn default() -> Self {
        Self::new(Vec::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_and_load_roundtrip() {
        let l = SnapshotList::new(vec![1, 2]);
        assert_eq!(l.load(), &[1, 2]);
        l.push(3);
        assert_eq!(l.load(), &[1, 2, 3]);
        assert_eq!(l.len(), 3);
        assert!(!l.is_empty());
    }

    #[test]
    fn old_borrow_survives_update() {
        let l = SnapshotList::new(vec![10]);
        let before = l.load();
        l.push(20);
        // The pre-update borrow still reads the old snapshot.
        assert_eq!(before, &[10]);
        assert_eq!(l.load(), &[10, 20]);
    }

    #[test]
    fn concurrent_readers_and_writers() {
        // Miri executes ~1000x slower; keep the shape, shrink the counts.
        const PUSHES: u64 = if cfg!(miri) { 10 } else { 100 };
        const LOADS: u64 = if cfg!(miri) { 50 } else { 1000 };
        let l = Arc::new(SnapshotList::new(vec![0u64]));
        let writers: Vec<_> = (0..4)
            .map(|w| {
                let l = Arc::clone(&l);
                std::thread::spawn(move || {
                    for i in 0..PUSHES {
                        l.push(w * 1000 + i);
                    }
                })
            })
            .collect();
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let l = Arc::clone(&l);
                std::thread::spawn(move || {
                    let mut last = 0;
                    for _ in 0..LOADS {
                        let s = l.load();
                        // Snapshots only grow and always start with the seed.
                        assert!(s.len() >= last);
                        assert_eq!(s[0], 0);
                        last = s.len();
                    }
                })
            })
            .collect();
        for h in writers.into_iter().chain(readers) {
            h.join().unwrap();
        }
        assert_eq!(l.len() as u64, 4 * PUSHES + 1, "no lost updates");
    }

    #[test]
    fn drop_frees_all_snapshots() {
        // Count drops through Arc strong counts.
        let item = Arc::new(5);
        {
            let l = SnapshotList::new(vec![Arc::clone(&item)]);
            for _ in 0..10 {
                l.push(Arc::clone(&item));
            }
            assert!(Arc::strong_count(&item) > 11, "retired snapshots hold clones");
        }
        assert_eq!(Arc::strong_count(&item), 1, "drop released every snapshot");
    }
}
