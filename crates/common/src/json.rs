//! Minimal JSON document builder for machine-readable output.
//!
//! The bench binaries and the stats reporter emit one JSON line per
//! run/interval so harnesses can track series and percentiles without
//! scraping text tables. There is no external JSON dependency in this
//! workspace, so this module provides a tiny value tree + renderer.
//! Escaping covers the control/quote/backslash set; floats render with
//! enough precision to round-trip typical metric magnitudes.

use std::fmt::Write as _;

/// A JSON value tree. Object fields keep insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for an empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Insert/append a field (objects only; panics otherwise — misuse is
    /// a programming error, not a runtime condition).
    pub fn set(&mut self, key: impl Into<String>, value: impl Into<Json>) -> &mut Self {
        match self {
            Json::Obj(fields) => fields.push((key.into(), value.into())),
            _ => panic!("Json::set on a non-object"),
        }
        self
    }

    /// Builder-style field insertion.
    pub fn with(mut self, key: impl Into<String>, value: impl Into<Json>) -> Self {
        self.set(key, value);
        self
    }

    /// Render to a compact single-line JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => {
                if v.is_finite() {
                    // Shortest representation that round-trips f64.
                    let _ = write!(out, "{v}");
                    // `{}` prints integral floats without a dot; keep JSON
                    // number form (a bare `5` is still valid JSON, fine).
                } else {
                    out.push_str("null"); // JSON has no NaN/Inf
                }
            }
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::U64(v)
    }
}

impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::U64(v as u64)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::U64(v as u64)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::I64(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::F64(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_documents() {
        let doc = Json::obj()
            .with("experiment", "exp1")
            .with("tpmc", 1234.5)
            .with("series", Json::Arr(vec![Json::U64(1), Json::U64(2)]))
            .with("nested", Json::obj().with("p50_ns", 42u64));
        assert_eq!(
            doc.render(),
            r#"{"experiment":"exp1","tpmc":1234.5,"series":[1,2],"nested":{"p50_ns":42}}"#
        );
    }

    #[test]
    fn escapes_strings() {
        let doc = Json::Str("a\"b\\c\nd\u{1}".into());
        assert_eq!(doc.render(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::F64(f64::NAN).render(), "null");
        assert_eq!(Json::F64(f64::INFINITY).render(), "null");
    }
}
