//! Synchronization shim: the one import path for every concurrency
//! primitive the kernel's lock-free machinery uses.
//!
//! Normal builds re-export `std::sync::atomic` and the parking_lot lock
//! types directly — zero wrappers, zero overhead, identical codegen to
//! importing them in place. Under `RUSTFLAGS="--cfg loom"` the same
//! names resolve to the in-tree `loom` model checker instead, so the
//! hybrid latch, trace ring, snapshot list, and twin-table fast path can
//! be exhaustively interleaved by the `loom_*` test suites without any
//! source change to the primitives themselves (see DESIGN.md
//! "Concurrency correctness").
//!
//! Porting rule: kernel modules that implement synchronization protocols
//! (as opposed to merely bumping counters) import atomics, locks, and
//! `UnsafeCell` from here, never from `std`/`parking_lot` directly.
//! `cargo xtask lint-kernel` does not enforce this mechanically — new
//! protocol code should follow it so the loom suites keep covering the
//! kernel's synchronization surface.

pub mod lockdep;

pub use lockdep::{
    Rank, RankedMutex, RankedMutexGuard, RankedReadGuard, RankedRwLock, RankedWriteGuard,
};

#[cfg(not(loom))]
pub use parking_lot::{Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

#[cfg(loom)]
pub use loom::sync::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

// Condvars are not modeled by the loom shim; the type is still exported so
// condvar-owning structs (timer, AIO completions, join handles) compile
// under `--cfg loom`. Waiting on one from a loom model is a bug — the
// ranked-guard wait methods panic there.
#[cfg(loom)]
pub use parking_lot::Condvar;

pub use std::sync::Arc;

/// Atomic types and fences; `loom`-instrumented under `cfg(loom)`.
pub mod atomic {
    #[cfg(not(loom))]
    pub use std::sync::atomic::{
        fence, AtomicBool, AtomicPtr, AtomicU16, AtomicU32, AtomicU64, AtomicU8, AtomicUsize,
        Ordering,
    };

    #[cfg(loom)]
    pub use loom::sync::atomic::{
        fence, AtomicBool, AtomicPtr, AtomicU16, AtomicU32, AtomicU64, AtomicU8, AtomicUsize,
        Ordering,
    };
}

/// Interior-mutability cell for data protected by an external protocol
/// (the hybrid latch's payload). Both variants expose the `get() -> *mut
/// T` shape of `std::cell::UnsafeCell`.
pub mod cell {
    #[cfg(not(loom))]
    pub use std::cell::UnsafeCell;

    #[cfg(loom)]
    pub use loom::cell::UnsafeCell;
}

/// Spin-wait hint: a scheduling point under the model checker so a
/// validate-retry loop cannot starve the writer it is waiting on.
pub mod hint {
    #[cfg(not(loom))]
    pub use std::hint::spin_loop;

    #[cfg(loom)]
    pub use loom::hint::spin_loop;
}
