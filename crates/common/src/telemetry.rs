//! The live telemetry plane: a dependency-free HTTP/1.1 exposition
//! server, the Prometheus text encoder, and the watchdog incident log.
//!
//! PhoebeDB's earlier observability surfaces are in-process
//! (`Database::stats()`) or post-mortem (the flight-recorder export at
//! shutdown). This module is the *external* surface: a minimal HTTP
//! listener on one dedicated thread serving
//!
//! * `GET /metrics` — Prometheus text exposition (format 0.0.4),
//! * `GET /stats`   — the kernel stats JSON document,
//! * `GET /trace?ms=N` — a live Perfetto snapshot of the flight-recorder
//!   rings after recording a further `N` milliseconds (the drain is the
//!   seq-validated one from [`crate::trace`], safe concurrent with
//!   writers — nothing stops),
//! * `GET /healthz` — liveness probe.
//!
//! The server knows nothing about the kernel: it talks to a
//! [`TelemetryProvider`] so the whole HTTP + encoding layer lives in
//! `phoebe-common` and is testable without a database. The kernel crate
//! implements the provider over a `Weak<Database>`, so a scrape racing a
//! `Database` drop gets a clean 503 instead of touching freed state.
//!
//! Deliberately hand-rolled on `std::net`: the workspace has no HTTP
//! dependency and must not grow one. One request per connection,
//! `Connection: close`, GET only — exactly what a Prometheus scraper or
//! `curl` needs and nothing more.

use crate::json::Json;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// What the telemetry server serves. Every method returns `None` when the
/// kernel is gone (mid-shutdown scrape), which the server maps to a 503.
pub trait TelemetryProvider: Send + Sync + 'static {
    /// The full Prometheus text exposition document.
    fn metrics_text(&self) -> Option<String>;
    /// The kernel stats snapshot as a JSON document.
    fn stats_json(&self) -> Option<String>;
    /// Record for `window_ms` more milliseconds, then export the flight
    /// recorder's current window as Chrome trace-event JSON.
    fn trace_json(&self, window_ms: u64) -> Option<String>;
}

/// Upper bound on `/trace?ms=N`: the handler thread sleeps the window
/// out, so an unbounded value would wedge the (serial) server.
pub const TRACE_WINDOW_MAX_MS: u64 = 10_000;

/// Handle to the running telemetry listener thread. Dropping (or calling
/// [`TelemetryServer::shutdown`]) stops the thread and joins it.
pub struct TelemetryServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl TelemetryServer {
    /// Bind `addr` (e.g. `127.0.0.1:9920`; port 0 picks an ephemeral
    /// port) and serve `provider` from a dedicated `phoebe-telemetry`
    /// thread. Fails fast on bind errors — telemetry is opt-in, so a
    /// misconfigured address should be loud, not silent.
    pub fn start(addr: &str, provider: Arc<dyn TelemetryProvider>) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("phoebe-telemetry".into())
            .spawn(move || serve(listener, provider, stop2))?;
        Ok(TelemetryServer { addr: local, stop, thread: Some(thread) })
    }

    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the listener thread and join it. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            // The accept loop blocks in `accept`; a no-op connection from
            // here is what wakes it to observe the stop flag.
            let _ = TcpStream::connect(self.addr);
            // If the server thread itself triggered this shutdown (e.g. a
            // request handler dropped the provider's last kernel
            // reference), joining would deadlock on ourselves; the stop
            // flag already guarantees the thread exits.
            if t.thread().id() != std::thread::current().id() {
                let _ = t.join();
            }
        }
    }
}

impl Drop for TelemetryServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve(listener: TcpListener, provider: Arc<dyn TelemetryProvider>, stop: Arc<AtomicBool>) {
    for conn in listener.incoming() {
        if stop.load(Ordering::Acquire) {
            return;
        }
        let Ok(mut stream) = conn else { continue };
        // A stalled client must not wedge the (serial) scrape loop.
        let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
        let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
        let _ = handle_request(&mut stream, provider.as_ref());
    }
}

/// Read one request head (bounded), route it, write one response.
fn handle_request(stream: &mut TcpStream, provider: &dyn TelemetryProvider) -> std::io::Result<()> {
    let mut head = Vec::with_capacity(1024);
    let mut buf = [0u8; 1024];
    // Read until the blank line ending the header block; cap at 16 KiB so
    // a hostile peer can't balloon memory. The body (there is none for
    // GET) is ignored.
    while !head.windows(4).any(|w| w == b"\r\n\r\n") {
        if head.len() > 16 * 1024 {
            return respond(stream, 431, "text/plain", "header block too large");
        }
        let n = stream.read(&mut buf)?;
        if n == 0 {
            return Ok(());
        }
        head.extend_from_slice(&buf[..n]);
    }
    let request_line = String::from_utf8_lossy(&head);
    let request_line = request_line.lines().next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let (method, target) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    if method != "GET" {
        return respond(stream, 405, "text/plain", "only GET is supported");
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    match path {
        "/metrics" => match provider.metrics_text() {
            Some(body) => respond(stream, 200, "text/plain; version=0.0.4; charset=utf-8", &body),
            None => respond(stream, 503, "text/plain", "kernel is shutting down"),
        },
        "/stats" => match provider.stats_json() {
            Some(body) => respond(stream, 200, "application/json", &body),
            None => respond(stream, 503, "text/plain", "kernel is shutting down"),
        },
        "/trace" => {
            let ms = query_param(query, "ms")
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or(200)
                .min(TRACE_WINDOW_MAX_MS);
            match provider.trace_json(ms) {
                Some(body) => respond(stream, 200, "application/json", &body),
                None => respond(stream, 503, "text/plain", "kernel is shutting down"),
            }
        }
        "/healthz" => respond(stream, 200, "text/plain", "ok"),
        _ => respond(stream, 404, "text/plain", "try /metrics, /stats, /trace?ms=N, /healthz"),
    }
}

fn query_param<'a>(query: &'a str, key: &str) -> Option<&'a str> {
    query.split('&').find_map(|kv| {
        let (k, v) = kv.split_once('=')?;
        (k == key).then_some(v)
    })
}

fn respond(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        404 => "Not Found",
        405 => "Method Not Allowed",
        431 => "Request Header Fields Too Large",
        503 => "Service Unavailable",
        _ => "Error",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

// ---------------------------------------------------------------------
// Prometheus text exposition encoding
// ---------------------------------------------------------------------

/// Incremental builder for the Prometheus text exposition format
/// (version 0.0.4): `# HELP`/`# TYPE` headers plus `name{labels} value`
/// samples. Label values are escaped per the spec (backslash, quote,
/// newline).
#[derive(Default)]
pub struct PromText {
    buf: String,
}

impl PromText {
    pub fn new() -> Self {
        PromText { buf: String::with_capacity(16 * 1024) }
    }

    /// Emit the `# HELP` and `# TYPE` headers for a metric family.
    /// `kind` is `counter`, `gauge` or `histogram`.
    pub fn header(&mut self, name: &str, help: &str, kind: &str) {
        self.buf.push_str("# HELP ");
        self.buf.push_str(name);
        self.buf.push(' ');
        self.buf.push_str(help);
        self.buf.push_str("\n# TYPE ");
        self.buf.push_str(name);
        self.buf.push(' ');
        self.buf.push_str(kind);
        self.buf.push('\n');
    }

    /// Emit one sample line. `labels` may be empty.
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        self.buf.push_str(name);
        self.push_labels(labels);
        self.buf.push(' ');
        self.buf.push_str(&value.to_string());
        self.buf.push('\n');
    }

    /// One full histogram exposition for a site: cumulative `_bucket`
    /// lines (`le` upper bounds inclusive, ending with `+Inf`), then
    /// `_sum` and `_count`. `buckets` are `(upper_bound, cumulative)`
    /// pairs as produced by
    /// [`crate::hist::HistogramSnapshot::cumulative_octaves`]; a final
    /// `u64::MAX` bound is rendered as `+Inf`.
    pub fn histogram(
        &mut self,
        name: &str,
        labels: &[(&str, &str)],
        buckets: &[(u64, u64)],
        sum: u64,
        count: u64,
    ) {
        let bucket_name = format!("{name}_bucket");
        let mut saw_inf = false;
        for &(bound, cum) in buckets {
            self.buf.push_str(&bucket_name);
            self.buf.push('{');
            for (k, v) in labels {
                self.push_label(k, v);
                self.buf.push(',');
            }
            if bound == u64::MAX {
                saw_inf = true;
                self.push_label("le", "+Inf");
            } else {
                self.push_label("le", &bound.to_string());
            }
            self.buf.push_str("} ");
            self.buf.push_str(&cum.to_string());
            self.buf.push('\n');
        }
        if !saw_inf {
            self.buf.push_str(&bucket_name);
            self.buf.push('{');
            for (k, v) in labels {
                self.push_label(k, v);
                self.buf.push(',');
            }
            self.push_label("le", "+Inf");
            self.buf.push_str("} ");
            self.buf.push_str(&count.to_string());
            self.buf.push('\n');
        }
        self.sample(&format!("{name}_sum"), labels, sum);
        self.sample(&format!("{name}_count"), labels, count);
    }

    fn push_labels(&mut self, labels: &[(&str, &str)]) {
        if labels.is_empty() {
            return;
        }
        self.buf.push('{');
        for (i, (k, v)) in labels.iter().enumerate() {
            if i > 0 {
                self.buf.push(',');
            }
            self.push_label(k, v);
        }
        self.buf.push('}');
    }

    fn push_label(&mut self, key: &str, value: &str) {
        self.buf.push_str(key);
        self.buf.push_str("=\"");
        for c in value.chars() {
            match c {
                '\\' => self.buf.push_str("\\\\"),
                '"' => self.buf.push_str("\\\""),
                '\n' => self.buf.push_str("\\n"),
                c => self.buf.push(c),
            }
        }
        self.buf.push('"');
    }

    pub fn finish(self) -> String {
        self.buf
    }
}

// ---------------------------------------------------------------------
// Watchdog incident log
// ---------------------------------------------------------------------

/// Writes structured incident records to an incident directory. Each
/// incident becomes its own `incident-<seq>-<kind>/` directory holding
/// `incident.json` (the structured record) plus any attached evidence
/// artifacts (flight-recorder snapshot, stats dump). The artifact files
/// are written *before* `incident.json`, so the record's presence means
/// the evidence is complete.
pub struct IncidentLog {
    dir: PathBuf,
    seq: AtomicU64,
    max_incidents: u64,
}

impl IncidentLog {
    /// An incident log rooted at `dir` (created lazily on first record),
    /// refusing to write more than `max_incidents` records — a wedged
    /// kernel must not fill the disk with identical evidence.
    pub fn new(dir: impl Into<PathBuf>, max_incidents: u64) -> Self {
        IncidentLog { dir: dir.into(), seq: AtomicU64::new(0), max_incidents: max_incidents.max(1) }
    }

    /// The root directory records are written under.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Incidents recorded so far (including any refused over the cap).
    pub fn recorded(&self) -> u64 {
        // ORDERING: diagnostic read of a monotone statistic.
        self.seq.load(Ordering::Relaxed).min(self.max_incidents)
    }

    /// Write one incident: `detail` is the detector's structured body
    /// (breached thresholds, observed values); `artifacts` are
    /// `(file_name, contents)` evidence pairs. Returns the incident
    /// directory, or `None` once the cap is reached.
    pub fn record(
        &self,
        kind: &str,
        detail: Json,
        artifacts: &[(&str, &str)],
    ) -> std::io::Result<Option<PathBuf>> {
        // ORDERING: the sequence only needs unique monotone values; the
        // files themselves are the published artifact.
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        if seq >= self.max_incidents {
            return Ok(None);
        }
        let dir = self.dir.join(format!("incident-{seq:04}-{kind}"));
        std::fs::create_dir_all(&dir)?;
        for (name, contents) in artifacts {
            std::fs::write(dir.join(name), contents)?;
        }
        let unix_ms = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        let record = Json::obj()
            .with("seq", seq)
            .with("kind", kind)
            .with("unix_ms", unix_ms)
            .with("detail", detail)
            .with(
                "artifacts",
                artifacts.iter().map(|(n, _)| Json::from(*n)).collect::<Vec<Json>>(),
            );
        std::fs::write(dir.join("incident.json"), record.render())?;
        Ok(Some(dir))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct FakeProvider;

    impl TelemetryProvider for FakeProvider {
        fn metrics_text(&self) -> Option<String> {
            let mut w = PromText::new();
            w.header("phoebe_test_total", "A test counter.", "counter");
            w.sample("phoebe_test_total", &[("kind", "unit")], 7);
            Some(w.finish())
        }

        fn stats_json(&self) -> Option<String> {
            Some(Json::obj().with("ok", true).render())
        }

        fn trace_json(&self, window_ms: u64) -> Option<String> {
            Some(format!("{{\"displayTimeUnit\":\"ns\",\"traceEvents\":[],\"ms\":{window_ms}}}"))
        }
    }

    struct GoneProvider;

    impl TelemetryProvider for GoneProvider {
        fn metrics_text(&self) -> Option<String> {
            None
        }
        fn stats_json(&self) -> Option<String> {
            None
        }
        fn trace_json(&self, _window_ms: u64) -> Option<String> {
            None
        }
    }

    fn get(addr: SocketAddr, target: &str) -> (u16, String) {
        let mut s = TcpStream::connect(addr).unwrap();
        write!(s, "GET {target} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        let status: u16 =
            out.split_whitespace().nth(1).and_then(|v| v.parse().ok()).expect("status line");
        let body = out.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
        (status, body)
    }

    #[test]
    fn server_routes_all_endpoints() {
        let mut srv = TelemetryServer::start("127.0.0.1:0", Arc::new(FakeProvider)).unwrap();
        let addr = srv.local_addr();

        let (status, body) = get(addr, "/metrics");
        assert_eq!(status, 200);
        assert!(body.contains("phoebe_test_total{kind=\"unit\"} 7"), "{body}");
        assert!(body.contains("# TYPE phoebe_test_total counter"));

        let (status, body) = get(addr, "/stats");
        assert_eq!(status, 200);
        assert!(body.contains("\"ok\""));

        let (status, body) = get(addr, "/trace?ms=3");
        assert_eq!(status, 200);
        assert!(body.contains("\"ms\":3"), "{body}");

        // Default + clamped trace windows.
        let (_, body) = get(addr, "/trace");
        assert!(body.contains("\"ms\":200"), "{body}");
        let (_, body) = get(addr, "/trace?ms=99999999");
        assert!(body.contains(&format!("\"ms\":{TRACE_WINDOW_MAX_MS}")), "{body}");

        let (status, _) = get(addr, "/healthz");
        assert_eq!(status, 200);
        let (status, _) = get(addr, "/nope");
        assert_eq!(status, 404);

        srv.shutdown();
        srv.shutdown(); // idempotent
        assert!(TcpStream::connect(addr).is_err() || get_closed(addr));
    }

    /// After shutdown the port may linger in TIME_WAIT briefly; a connect
    /// that succeeds but reads nothing also proves the server is gone.
    fn get_closed(addr: SocketAddr) -> bool {
        let Ok(mut s) = TcpStream::connect(addr) else { return true };
        let _ = write!(s, "GET /healthz HTTP/1.1\r\n\r\n");
        let _ = s.set_read_timeout(Some(Duration::from_millis(200)));
        let mut out = String::new();
        s.read_to_string(&mut out).is_err() || out.is_empty()
    }

    #[test]
    fn dead_kernel_returns_503_everywhere() {
        let srv = TelemetryServer::start("127.0.0.1:0", Arc::new(GoneProvider)).unwrap();
        for target in ["/metrics", "/stats", "/trace?ms=1"] {
            let (status, _) = get(srv.local_addr(), target);
            assert_eq!(status, 503, "{target}");
        }
    }

    #[test]
    fn non_get_methods_are_rejected() {
        let srv = TelemetryServer::start("127.0.0.1:0", Arc::new(FakeProvider)).unwrap();
        let mut s = TcpStream::connect(srv.local_addr()).unwrap();
        write!(s, "POST /metrics HTTP/1.1\r\nContent-Length: 0\r\n\r\n").unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 405"), "{out}");
    }

    #[test]
    fn prom_text_escapes_label_values() {
        let mut w = PromText::new();
        w.sample("m", &[("l", "a\"b\\c\nd")], 1);
        assert_eq!(w.finish(), "m{l=\"a\\\"b\\\\c\\nd\"} 1\n");
    }

    #[test]
    fn prom_histogram_renders_cumulative_buckets_and_inf() {
        let mut w = PromText::new();
        w.histogram("lat", &[("site", "commit")], &[(7, 2), (15, 5), (u64::MAX, 9)], 1234, 9);
        let text = w.finish();
        assert!(text.contains("lat_bucket{site=\"commit\",le=\"7\"} 2"), "{text}");
        assert!(text.contains("lat_bucket{site=\"commit\",le=\"15\"} 5"), "{text}");
        assert!(text.contains("lat_bucket{site=\"commit\",le=\"+Inf\"} 9"), "{text}");
        assert!(text.contains("lat_sum{site=\"commit\"} 1234"), "{text}");
        assert!(text.contains("lat_count{site=\"commit\"} 9"), "{text}");
    }

    #[test]
    fn prom_histogram_synthesizes_missing_inf_bucket() {
        let mut w = PromText::new();
        w.histogram("lat", &[], &[(7, 2)], 10, 4);
        let text = w.finish();
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 4"), "{text}");
    }

    #[test]
    fn incident_log_writes_record_and_artifacts_up_to_cap() {
        let dir = std::env::temp_dir().join(format!("phoebe-incident-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let log = IncidentLog::new(&dir, 2);
        let d1 = log
            .record("wal_flush_stall", Json::obj().with("age_ms", 700u64), &[("trace.json", "{}")])
            .unwrap()
            .expect("first incident under cap");
        assert!(d1.join("incident.json").exists());
        assert!(d1.join("trace.json").exists());
        let record = std::fs::read_to_string(d1.join("incident.json")).unwrap();
        assert!(record.contains("\"kind\":\"wal_flush_stall\""), "{record}");
        assert!(record.contains("\"age_ms\":700"), "{record}");

        assert!(log.record("worker_stall", Json::obj(), &[]).unwrap().is_some());
        assert!(log.record("worker_stall", Json::obj(), &[]).unwrap().is_none(), "cap reached");
        assert_eq!(log.recorded(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
