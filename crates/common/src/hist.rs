//! Lock-free log-bucketed latency histograms (the measurement substrate
//! for Exp 7-style breakdowns and the `Database::stats()` percentiles).
//!
//! Each histogram is a fixed array of relaxed `AtomicU64` buckets whose
//! boundaries grow geometrically: values keep their top
//! [`SUB_BUCKET_BITS`] mantissa bits, giving every octave `2^SUB_BUCKET_BITS`
//! linear sub-buckets (~12% worst-case relative error). Recording is a
//! single index computation plus one relaxed `fetch_add`, so the hot
//! paths (commit, WAL flush, buffer fault, ...) pay a handful of
//! nanoseconds. Histograms are sharded per worker alongside the
//! counters in [`crate::metrics::Metrics`] and merged in O(workers) at
//! snapshot time; merged snapshots expose p50/p95/p99 estimates.

use std::sync::atomic::{AtomicU64, Ordering};

/// Linear sub-buckets per power-of-two octave (2^3 = 8).
pub const SUB_BUCKET_BITS: usize = 3;

/// Total bucket count: covers the full `u64` nanosecond domain.
pub const NUM_BUCKETS: usize = (64 - SUB_BUCKET_BITS + 1) << SUB_BUCKET_BITS;

/// Instrumented latency sites across the kernel.
///
/// Every variant maps to one paper mechanism (see DESIGN.md
/// "Observability" for the section-by-section mapping).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum LatencySite {
    /// `Transaction::commit` end-to-end (WAL commit record + durability wait).
    Commit = 0,
    /// `Transaction::rollback` end-to-end (UNDO replay + abort record).
    Abort = 1,
    /// One per-slot WAL writer flush (write + optional fsync).
    WalFlush = 2,
    /// One group-commit round flushing all dirty slot writers.
    GroupCommit = 3,
    /// Cold page fault: read from the Data Page File into a frame.
    BufferFault = 4,
    /// Page eviction: write-back (if dirty) + unswizzle.
    Eviction = 5,
    /// Wasted work in one optimistic B-Tree descent that had to restart.
    BtreeRestart = 6,
    /// Time a transaction spent blocked on another writer's tuple lock.
    LockWait = 7,
    /// End-to-end WAL recovery replay in `Database::open` (scan + apply
    /// + re-log). At most one observation per crash-recovering open.
    RecoveryReplay = 8,
    /// One `Transaction::multi_get`/`multi_lookup` batch end-to-end
    /// (interleaved descents, including any fault-suspend waits).
    BatchGet = 9,
}

pub const NSITES: usize = 10;

/// All sites in display/report order.
pub const SITES: [LatencySite; NSITES] = [
    LatencySite::Commit,
    LatencySite::Abort,
    LatencySite::WalFlush,
    LatencySite::GroupCommit,
    LatencySite::BufferFault,
    LatencySite::Eviction,
    LatencySite::BtreeRestart,
    LatencySite::LockWait,
    LatencySite::RecoveryReplay,
    LatencySite::BatchGet,
];

impl LatencySite {
    pub fn name(self) -> &'static str {
        match self {
            LatencySite::Commit => "commit",
            LatencySite::Abort => "abort",
            LatencySite::WalFlush => "wal_flush",
            LatencySite::GroupCommit => "group_commit",
            LatencySite::BufferFault => "buffer_fault",
            LatencySite::Eviction => "eviction",
            LatencySite::BtreeRestart => "btree_restart",
            LatencySite::LockWait => "lock_wait",
            LatencySite::RecoveryReplay => "recovery_replay",
            LatencySite::BatchGet => "batch_get",
        }
    }
}

/// Bucket index for a nanosecond value. Small values (below
/// `2^SUB_BUCKET_BITS`) index directly; larger values keep their top
/// `SUB_BUCKET_BITS` bits after the leading one.
#[inline]
pub fn bucket_index(ns: u64) -> usize {
    let v = ns.max(1);
    let msb = 63 - v.leading_zeros() as usize;
    if msb < SUB_BUCKET_BITS {
        v as usize
    } else {
        let sub = ((v >> (msb - SUB_BUCKET_BITS)) & ((1 << SUB_BUCKET_BITS) - 1)) as usize;
        ((msb - SUB_BUCKET_BITS + 1) << SUB_BUCKET_BITS) + sub
    }
}

/// Inclusive lower bound of a bucket (inverse of [`bucket_index`]).
#[inline]
pub fn bucket_lower_bound(index: usize) -> u64 {
    let octave = index >> SUB_BUCKET_BITS;
    let sub = (index & ((1 << SUB_BUCKET_BITS) - 1)) as u64;
    if octave == 0 {
        sub
    } else {
        let msb = octave - 1 + SUB_BUCKET_BITS;
        (1u64 << msb) | (sub << (msb - SUB_BUCKET_BITS))
    }
}

/// A lock-free histogram: one relaxed `fetch_add` per record.
pub struct LatencyHistogram {
    buckets: Box<[AtomicU64; NUM_BUCKETS]>,
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: {
                let v: Vec<AtomicU64> = (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect();
                v.into_boxed_slice().try_into().map_err(|_| ()).expect("exact length")
            },
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    #[inline]
    pub fn record(&self, ns: u64) {
        self.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Add this shard's contents into a merge-in-progress snapshot.
    pub fn merge_into(&self, out: &mut HistogramSnapshot) {
        for (i, b) in self.buckets.iter().enumerate() {
            out.buckets[i] += b.load(Ordering::Relaxed);
        }
        out.count += self.count.load(Ordering::Relaxed);
        out.sum_ns += self.sum_ns.load(Ordering::Relaxed);
        out.max_ns = out.max_ns.max(self.max_ns.load(Ordering::Relaxed));
    }
}

/// An immutable merged histogram with quantile estimation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    count: u64,
    sum_ns: u64,
    max_ns: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot { buckets: vec![0; NUM_BUCKETS], count: 0, sum_ns: 0, max_ns: 0 }
    }
}

impl HistogramSnapshot {
    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum_ns(&self) -> u64 {
        self.sum_ns
    }

    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// Record a value directly into a snapshot (used by tests and
    /// offline aggregation; the hot path goes through
    /// [`LatencyHistogram::record`]).
    pub fn record(&mut self, ns: u64) {
        self.buckets[bucket_index(ns)] += 1;
        self.count += 1;
        self.sum_ns = self.sum_ns.saturating_add(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Estimate the `q`-quantile (`0.0 ..= 1.0`) in nanoseconds: the
    /// lower bound of the bucket containing the q·count-th sample,
    /// clamped by the observed maximum.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_lower_bound(i).min(self.max_ns);
            }
        }
        self.max_ns
    }

    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Cumulative bucket view for Prometheus-style exposition: one
    /// `(upper_bound_ns, cumulative_count)` pair per power-of-two octave
    /// (the `2^SUB_BUCKET_BITS` linear sub-buckets of an octave are
    /// collapsed), upper bounds inclusive and strictly increasing. The
    /// `+Inf` bucket is not included — it always equals [`Self::count`].
    ///
    /// Octave granularity keeps a 10-site exposition around ~600 lines
    /// instead of ~5000 while staying within 2x relative bound error,
    /// which is plenty for dashboard heatmaps; exact quantiles come from
    /// [`Self::quantile`] over the full-resolution buckets.
    pub fn cumulative_octaves(&self) -> Vec<(u64, u64)> {
        let per_octave = 1usize << SUB_BUCKET_BITS;
        let mut out = Vec::with_capacity(NUM_BUCKETS / per_octave);
        let mut cum = 0u64;
        let mut i = 0;
        while i + per_octave <= NUM_BUCKETS {
            let end = i + per_octave;
            for &c in &self.buckets[i..end] {
                cum += c;
            }
            // Buckets cover [lower_bound(i), lower_bound(end)), so the
            // inclusive upper bound of this group is lower_bound(end) - 1.
            // The final octave's bound would be 2^64: clamp to u64::MAX
            // (bucket_lower_bound would shift out of range there).
            let upper = if end == NUM_BUCKETS { u64::MAX } else { bucket_lower_bound(end) - 1 };
            out.push((upper, cum));
            i = end;
        }
        out
    }

    /// Merge another snapshot into this one (bucket-wise sum). `sum_ns`
    /// saturates: a pinned mean beats a panic after ~580 years of
    /// accumulated latency.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Bucket-wise `self - earlier` (interval deltas for the reporter).
    pub fn delta_since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut out = HistogramSnapshot::default();
        for i in 0..NUM_BUCKETS {
            out.buckets[i] = self.buckets[i].saturating_sub(earlier.buckets[i]);
        }
        out.count = self.count.saturating_sub(earlier.count);
        out.sum_ns = self.sum_ns.saturating_sub(earlier.sum_ns);
        // The interval max is unknowable from bucket deltas; report the
        // highest non-empty bucket's upper region via the overall max.
        out.max_ns = if out.count > 0 { self.max_ns } else { 0 };
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_roundtrips_with_bounded_error() {
        for &v in &[0u64, 1, 2, 7, 8, 9, 100, 1_000, 65_535, 1 << 30, u64::MAX / 2] {
            let idx = bucket_index(v);
            let lo = bucket_lower_bound(idx);
            assert!(lo <= v.max(1), "lower bound {lo} above value {v}");
            // Relative error bounded by one sub-bucket (~12.5%).
            if v > 8 {
                assert!((v - lo) as f64 / v as f64 <= 0.125 + 1e-9, "v={v} lo={lo} idx={idx}");
            }
            assert!(idx < NUM_BUCKETS);
        }
    }

    #[test]
    fn bucket_bounds_are_monotone() {
        let mut prev = 0;
        for i in 1..NUM_BUCKETS {
            let b = bucket_lower_bound(i);
            assert!(b >= prev, "bucket {i} bound {b} < {prev}");
            prev = b;
        }
    }

    #[test]
    fn quantiles_are_monotone_and_bounded() {
        let h = LatencyHistogram::default();
        for v in 1..=10_000u64 {
            h.record(v * 100);
        }
        let mut s = HistogramSnapshot::default();
        h.merge_into(&mut s);
        assert_eq!(s.count(), 10_000);
        let (p50, p95, p99) = (s.p50(), s.p95(), s.p99());
        assert!(p50 <= p95 && p95 <= p99, "p50={p50} p95={p95} p99={p99}");
        assert!(p99 <= s.max_ns());
        // p50 of uniform 100..=1_000_000 should be near 500_000.
        assert!((400_000..=600_000).contains(&p50), "p50={p50}");
    }

    #[test]
    fn merge_preserves_count_and_bounds_quantiles() {
        let mut a = HistogramSnapshot::default();
        let mut b = HistogramSnapshot::default();
        for v in 1..=100u64 {
            a.record(v * 10); // 10..=1000
        }
        for v in 1..=100u64 {
            b.record(v * 1000); // 1000..=100_000
        }
        let (qa, qb) = (a.p50(), b.p50());
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(m.count(), 200);
        let qm = m.p50();
        assert!(qm >= qa.min(qb) && qm <= qa.max(qb), "qa={qa} qb={qb} qm={qm}");
    }

    #[test]
    fn delta_since_isolates_the_interval() {
        let h = LatencyHistogram::default();
        for _ in 0..50 {
            h.record(1_000);
        }
        let mut early = HistogramSnapshot::default();
        h.merge_into(&mut early);
        for _ in 0..50 {
            h.record(1_000_000);
        }
        let mut late = HistogramSnapshot::default();
        h.merge_into(&mut late);
        let d = late.delta_since(&early);
        assert_eq!(d.count(), 50);
        assert!(d.p50() >= 500_000, "delta p50 {} should reflect the slow interval", d.p50());
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let s = HistogramSnapshot::default();
        assert_eq!(s.p50(), 0);
        assert_eq!(s.p99(), 0);
        assert_eq!(s.mean_ns(), 0.0);
    }

    #[test]
    fn cumulative_octaves_are_monotone_and_total_to_count() {
        let mut s = HistogramSnapshot::default();
        for &v in &[0u64, 1, 7, 8, 100, 10_000, 1 << 40, u64::MAX] {
            s.record(v);
        }
        let octaves = s.cumulative_octaves();
        assert_eq!(octaves.len(), NUM_BUCKETS >> SUB_BUCKET_BITS);
        let mut prev_bound = 0u64;
        let mut prev_cum = 0u64;
        for &(bound, cum) in &octaves {
            assert!(bound > prev_bound || prev_bound == 0, "bounds must increase");
            assert!(cum >= prev_cum, "cumulative counts must be non-decreasing");
            prev_bound = bound;
            prev_cum = cum;
        }
        let (last_bound, last_cum) = *octaves.last().unwrap();
        assert_eq!(last_bound, u64::MAX);
        assert_eq!(last_cum, s.count(), "final octave must equal the total count");
        // Small values land under the first bound (7), which covers 0..=7.
        assert_eq!(octaves[0].0, 7);
        assert_eq!(octaves[0].1, 3, "0, 1 and 7 sit in the first octave; 8 does not");
    }

    #[test]
    fn site_names_are_stable() {
        let names: Vec<&str> = SITES.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            vec![
                "commit",
                "abort",
                "wal_flush",
                "group_commit",
                "buffer_fault",
                "eviction",
                "btree_restart",
                "lock_wait",
                "recovery_replay",
                "batch_get"
            ]
        );
    }
}
