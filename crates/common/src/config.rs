//! Kernel configuration.
//!
//! One struct gathers every tunable the paper's evaluation varies: worker
//! count, task slots per worker (32 in the paper), buffer size, affinity,
//! temperature thresholds, and WAL behaviour. Defaults are scaled to a small
//! development machine; the benchmark harness overrides them per experiment.

use crate::error::{PhoebeError, Result};
use serde::{Deserialize, Serialize};
use std::path::PathBuf;

/// Size of every data page. The paper does not pin a page size; 16 KiB
/// matches LeanStore-family systems and divides evenly into PAX minipages.
pub const PAGE_SIZE: usize = 16 * 1024;

/// Full kernel configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KernelConfig {
    /// Number of worker threads in the co-routine pool. The paper matches
    /// this to the CPU core count (§7.1 fn 1).
    pub workers: usize,
    /// Task slots per worker (32 in every paper experiment, §9).
    pub slots_per_worker: usize,
    /// Total Main Storage budget in buffer frames, split evenly across
    /// worker partitions (§7.1: each worker manages its own partition).
    pub buffer_frames: usize,
    /// Workload affinity (§9): bind each warehouse's transactions to a home
    /// worker so cross-worker contention disappears. We reproduce this as
    /// partition affinity rather than CPU pinning (see DESIGN.md).
    pub affinity: bool,
    /// Directory for the Data Page File, Data Block File and WAL files.
    pub data_dir: PathBuf,
    /// Whether commits wait for their slot's WAL writer to reach the disk
    /// ("WAL sync is enabled" in §9). Off = fully asynchronous commit.
    pub wal_sync: bool,
    /// Group-commit window for each slot WAL writer, in microseconds.
    pub wal_group_commit_us: u64,
    /// Fraction of a partition's frames kept free; dropping below it
    /// triggers page swaps on the dedicated task slot (§7.1).
    pub free_frame_watermark: f64,
    /// Run GC after this many transactions complete on a worker (§7.1).
    pub gc_every_txns: u64,
    /// Leaf pages whose OLTP access count over the sampling window stays
    /// below this threshold are candidates for freezing (§5.2).
    pub freeze_access_threshold: u64,
    /// Number of consecutive cold leaf pages compressed into one frozen
    /// data block (§5.2).
    pub freeze_batch_pages: usize,
    /// Read count above which a frozen block's rows are warmed back into
    /// hot storage (§5.2 case 3).
    pub warm_read_threshold: u64,
    /// Lock wait budget before a transaction gives up with `LockTimeout`.
    pub lock_timeout_ms: u64,
    /// Deterministic fault injection for the persistence layer. `None`
    /// (production) runs on [`crate::fault::OsFs`]; `Some` routes every
    /// WAL/page-file byte through a seeded [`crate::fault::SimFs`] torture
    /// disk (crash-consistency tests only).
    pub fault: Option<crate::fault::FaultConfig>,
    /// Flight-recorder configuration. `None` (default) installs the
    /// disabled tracer: every emit site costs one relaxed atomic load.
    /// `Some` records events into per-worker rings; see
    /// [`crate::trace::Tracer`]. The `PHOEBE_TRACE=<path>` environment
    /// variable enables this without touching code.
    #[serde(default)]
    pub trace: Option<TraceConfig>,
    /// Live telemetry endpoint. `None` (default) starts no listener and
    /// adds zero hot-path cost. `Some` serves `/metrics`, `/stats` and
    /// `/trace` from a dedicated thread; the
    /// `PHOEBE_TELEMETRY=<addr>` environment variable enables this
    /// without touching code. See [`crate::telemetry`].
    #[serde(default)]
    pub telemetry: Option<TelemetryConfig>,
    /// Stall watchdog. `None` (default) runs no watchdog. `Some` samples
    /// cheap progress heartbeats on an interval and writes incident
    /// records with attached flight-recorder evidence when thresholds
    /// are breached.
    #[serde(default)]
    pub watchdog: Option<WatchdogConfig>,
}

/// Live telemetry endpoint tuning; see [`crate::telemetry`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TelemetryConfig {
    /// Address to bind the HTTP listener to, e.g. `127.0.0.1:9920`.
    /// Port 0 picks an ephemeral port (the kernel logs the resolved
    /// address at startup).
    pub addr: String,
}

/// Stall-watchdog thresholds. All breach windows are measured against
/// the sampling interval, so they are effective at interval
/// granularity.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WatchdogConfig {
    /// Heartbeat sampling interval, milliseconds.
    pub interval_ms: u64,
    /// A worker with occupied task slots whose poll counter has not
    /// advanced for this long is reported as stalled.
    pub worker_stall_ms: u64,
    /// A WAL flush horizon (appended ahead of flushed) that has not
    /// advanced for this long is reported as stalled.
    pub wal_stall_ms: u64,
    /// If set, a commit p99 (over the sampling window) above this many
    /// nanoseconds raises an incident.
    pub p99_limit_ns: Option<u64>,
    /// Where incident records go. `None` defaults to
    /// `<data_dir>/incidents`.
    pub incident_dir: Option<PathBuf>,
    /// Hard cap on incident records written per kernel lifetime — a
    /// wedged kernel must not fill the disk with identical evidence.
    pub max_incidents: u64,
    /// Minimum spacing between two incidents of the same kind,
    /// milliseconds.
    pub cooldown_ms: u64,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            interval_ms: 50,
            worker_stall_ms: 500,
            wal_stall_ms: 500,
            p99_limit_ns: None,
            incident_dir: None,
            max_incidents: 16,
            cooldown_ms: 5_000,
        }
    }
}

/// Flight-recorder tuning; see [`crate::trace`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Where to write the Chrome trace-event JSON at shutdown. `None`
    /// keeps recording in memory for on-demand drains only.
    pub path: Option<PathBuf>,
    /// Events retained per worker ring (rounded up to a power of two).
    /// Older events are overwritten; the recorder always holds the most
    /// recent window.
    pub ring_capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig { path: None, ring_capacity: 65_536 }
    }
}

impl TraceConfig {
    /// Record with default ring sizing and export to `path` at shutdown
    /// (what `PHOEBE_TRACE=<path>` expands to).
    pub fn to_file(path: impl Into<PathBuf>) -> Self {
        TraceConfig { path: Some(path.into()), ..TraceConfig::default() }
    }
}

impl Default for KernelConfig {
    fn default() -> Self {
        KernelConfig {
            workers: std::thread::available_parallelism().map_or(2, |n| n.get()),
            slots_per_worker: 32,
            buffer_frames: 4096, // 64 MiB of 16 KiB frames
            affinity: true,
            data_dir: std::env::temp_dir().join("phoebedb"),
            wal_sync: true,
            wal_group_commit_us: 200,
            free_frame_watermark: 0.10,
            gc_every_txns: 64,
            freeze_access_threshold: 2,
            freeze_batch_pages: 8,
            warm_read_threshold: 16,
            lock_timeout_ms: 2_000,
            fault: None,
            trace: None,
            telemetry: None,
            watchdog: None,
        }
    }
}

impl KernelConfig {
    /// Start building a configuration from the defaults. `build()`
    /// validates the result, so impossible shapes (zero workers, zero
    /// task slots, a watermark above 1.0, ...) are caught at
    /// construction instead of surfacing as kernel panics later.
    pub fn builder() -> KernelConfigBuilder {
        KernelConfigBuilder { cfg: KernelConfig::default() }
    }

    /// A configuration suitable for unit tests: tiny buffers, one worker,
    /// a fresh unique temp directory, and synchronous-but-fast WAL.
    pub fn for_tests() -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("phoebedb-test-{}-{}", std::process::id(), n));
        KernelConfig {
            workers: 2,
            slots_per_worker: 4,
            buffer_frames: 256,
            data_dir: dir,
            wal_group_commit_us: 50,
            ..KernelConfig::default()
        }
    }

    /// Frames in each worker's buffer partition (at least one).
    pub fn frames_per_partition(&self) -> usize {
        (self.buffer_frames / self.workers.max(1)).max(1)
    }

    /// Total task slots across the pool.
    pub fn total_slots(&self) -> usize {
        self.workers * self.slots_per_worker
    }

    /// Validate an already-constructed configuration (the builder's
    /// `build()` and `Database::open` both call this).
    pub fn validate(&self) -> Result<()> {
        fn fail(msg: impl Into<String>) -> Result<()> {
            Err(PhoebeError::Config(msg.into()))
        }
        if self.workers == 0 {
            return fail("workers must be at least 1");
        }
        if self.slots_per_worker == 0 {
            return fail("slots_per_worker must be at least 1");
        }
        if self.buffer_frames == 0 {
            return fail("buffer_frames must be at least 1");
        }
        if !(0.0..1.0).contains(&self.free_frame_watermark) {
            return fail(format!(
                "free_frame_watermark must be in [0, 1), got {}",
                self.free_frame_watermark
            ));
        }
        if self.gc_every_txns == 0 {
            return fail("gc_every_txns must be at least 1");
        }
        if self.freeze_batch_pages == 0 {
            return fail("freeze_batch_pages must be at least 1");
        }
        if self.data_dir.as_os_str().is_empty() {
            return fail("data_dir must not be empty");
        }
        if let Some(trace) = &self.trace {
            if trace.ring_capacity == 0 {
                return fail("trace.ring_capacity must be at least 1");
            }
        }
        if let Some(telemetry) = &self.telemetry {
            if telemetry.addr.trim().is_empty() {
                return fail("telemetry.addr must not be empty");
            }
        }
        if let Some(watchdog) = &self.watchdog {
            if watchdog.interval_ms == 0 {
                return fail("watchdog.interval_ms must be at least 1");
            }
            if watchdog.max_incidents == 0 {
                return fail("watchdog.max_incidents must be at least 1");
            }
        }
        Ok(())
    }
}

/// Validating builder for [`KernelConfig`]; see [`KernelConfig::builder`].
#[derive(Debug, Clone)]
pub struct KernelConfigBuilder {
    cfg: KernelConfig,
}

macro_rules! builder_setters {
    ($( $(#[$doc:meta])* $name:ident : $ty:ty ),* $(,)?) => {
        $(
            $(#[$doc])*
            pub fn $name(mut self, value: $ty) -> Self {
                self.cfg.$name = value;
                self
            }
        )*
    };
}

impl KernelConfigBuilder {
    builder_setters! {
        /// Worker threads in the co-routine pool.
        workers: usize,
        /// Task slots per worker (the paper uses 32).
        slots_per_worker: usize,
        /// Total Main Storage budget in buffer frames.
        buffer_frames: usize,
        /// Workload affinity: pin warehouses to home workers (§9).
        affinity: bool,
        /// Whether commits wait for WAL durability.
        wal_sync: bool,
        /// Group-commit window per slot WAL writer, microseconds.
        wal_group_commit_us: u64,
        /// Free-frame fraction that triggers page swaps, in `[0, 1)`.
        free_frame_watermark: f64,
        /// Run GC after this many transactions per worker.
        gc_every_txns: u64,
        /// Access-count threshold below which leaves freeze (§5.2).
        freeze_access_threshold: u64,
        /// Cold leaves compressed per frozen block (§5.2).
        freeze_batch_pages: usize,
        /// Reads that warm a frozen block back into hot storage.
        warm_read_threshold: u64,
        /// Lock wait budget before `LockTimeout`, milliseconds.
        lock_timeout_ms: u64,
    }

    /// Directory for the Data Page File, Data Block File, and WAL.
    pub fn data_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cfg.data_dir = dir.into();
        self
    }

    /// Route all persistence through a seeded fault-injecting disk
    /// (crash-consistency torture runs).
    pub fn fault(mut self, fault: crate::fault::FaultConfig) -> Self {
        self.cfg.fault = Some(fault);
        self
    }

    /// Enable the kernel flight recorder (see [`crate::trace::Tracer`]).
    pub fn trace(mut self, trace: TraceConfig) -> Self {
        self.cfg.trace = Some(trace);
        self
    }

    /// Serve live telemetry (`/metrics`, `/stats`, `/trace`) on `addr`,
    /// e.g. `127.0.0.1:9920`. Port 0 picks an ephemeral port.
    pub fn telemetry_addr(mut self, addr: impl Into<String>) -> Self {
        self.cfg.telemetry = Some(TelemetryConfig { addr: addr.into() });
        self
    }

    /// Run the stall watchdog with the given thresholds.
    pub fn watchdog(mut self, watchdog: WatchdogConfig) -> Self {
        self.cfg.watchdog = Some(watchdog);
        self
    }

    /// Validate and produce the configuration.
    pub fn build(self) -> Result<KernelConfig> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = KernelConfig::default();
        assert!(c.workers >= 1);
        assert_eq!(c.slots_per_worker, 32);
        assert!(c.buffer_frames > 0);
        assert!(c.wal_sync);
    }

    #[test]
    fn partition_math_never_returns_zero() {
        let c = KernelConfig { buffer_frames: 1, workers: 64, ..KernelConfig::default() };
        assert_eq!(c.frames_per_partition(), 1);
    }

    #[test]
    fn test_config_dirs_are_unique() {
        let a = KernelConfig::for_tests();
        let b = KernelConfig::for_tests();
        assert_ne!(a.data_dir, b.data_dir);
    }

    #[test]
    fn total_slots_is_product() {
        let mut c = KernelConfig::for_tests();
        c.workers = 3;
        c.slots_per_worker = 5;
        assert_eq!(c.total_slots(), 15);
    }

    #[test]
    fn builder_defaults_validate() {
        let c = KernelConfig::builder().build().expect("defaults are valid");
        assert_eq!(c.slots_per_worker, KernelConfig::default().slots_per_worker);
    }

    #[test]
    fn builder_applies_every_setter() {
        let c = KernelConfig::builder()
            .workers(3)
            .slots_per_worker(7)
            .buffer_frames(512)
            .affinity(false)
            .data_dir("/tmp/phoebe-builder")
            .wal_sync(false)
            .wal_group_commit_us(99)
            .free_frame_watermark(0.25)
            .gc_every_txns(11)
            .freeze_access_threshold(5)
            .freeze_batch_pages(4)
            .warm_read_threshold(9)
            .lock_timeout_ms(123)
            .build()
            .unwrap();
        assert_eq!(c.workers, 3);
        assert_eq!(c.slots_per_worker, 7);
        assert_eq!(c.buffer_frames, 512);
        assert!(!c.affinity);
        assert_eq!(c.data_dir, PathBuf::from("/tmp/phoebe-builder"));
        assert!(!c.wal_sync);
        assert_eq!(c.wal_group_commit_us, 99);
        assert_eq!(c.free_frame_watermark, 0.25);
        assert_eq!(c.gc_every_txns, 11);
        assert_eq!(c.freeze_access_threshold, 5);
        assert_eq!(c.freeze_batch_pages, 4);
        assert_eq!(c.warm_read_threshold, 9);
        assert_eq!(c.lock_timeout_ms, 123);
    }

    #[test]
    fn builder_rejects_zero_slots() {
        let err = KernelConfig::builder().slots_per_worker(0).build().unwrap_err();
        assert!(matches!(err, PhoebeError::Config(_)), "got {err:?}");
        assert!(err.to_string().contains("slots_per_worker"));
    }

    #[test]
    fn builder_rejects_degenerate_shapes() {
        assert!(KernelConfig::builder().workers(0).build().is_err());
        assert!(KernelConfig::builder().buffer_frames(0).build().is_err());
        assert!(KernelConfig::builder().free_frame_watermark(1.5).build().is_err());
        assert!(KernelConfig::builder().free_frame_watermark(-0.1).build().is_err());
        assert!(KernelConfig::builder().gc_every_txns(0).build().is_err());
        assert!(KernelConfig::builder().freeze_batch_pages(0).build().is_err());
        assert!(KernelConfig::builder().data_dir("").build().is_err());
    }

    #[test]
    fn trace_builder_and_validation() {
        let c = KernelConfig::builder().trace(TraceConfig::to_file("/tmp/t.json")).build().unwrap();
        let t = c.trace.expect("trace config set");
        assert_eq!(t.path.as_deref(), Some(std::path::Path::new("/tmp/t.json")));
        assert_eq!(t.ring_capacity, TraceConfig::default().ring_capacity);
        let bad = KernelConfig::builder()
            .trace(TraceConfig { path: None, ring_capacity: 0 })
            .build()
            .unwrap_err();
        assert!(bad.to_string().contains("ring_capacity"), "got {bad}");
    }

    #[test]
    fn telemetry_and_watchdog_builder_and_validation() {
        let c = KernelConfig::builder()
            .telemetry_addr("127.0.0.1:0")
            .watchdog(WatchdogConfig { interval_ms: 10, ..WatchdogConfig::default() })
            .build()
            .unwrap();
        assert_eq!(c.telemetry.as_ref().map(|t| t.addr.as_str()), Some("127.0.0.1:0"));
        assert_eq!(c.watchdog.as_ref().map(|w| w.interval_ms), Some(10));

        let bad = KernelConfig::builder().telemetry_addr("  ").build().unwrap_err();
        assert!(bad.to_string().contains("telemetry.addr"), "got {bad}");
        let bad = KernelConfig::builder()
            .watchdog(WatchdogConfig { interval_ms: 0, ..WatchdogConfig::default() })
            .build()
            .unwrap_err();
        assert!(bad.to_string().contains("interval_ms"), "got {bad}");
        let bad = KernelConfig::builder()
            .watchdog(WatchdogConfig { max_incidents: 0, ..WatchdogConfig::default() })
            .build()
            .unwrap_err();
        assert!(bad.to_string().contains("max_incidents"), "got {bad}");
    }

    #[test]
    fn config_errors_are_not_retryable() {
        let err = KernelConfig::builder().workers(0).build().unwrap_err();
        assert!(!err.is_retryable());
    }
}
