//! Kernel configuration.
//!
//! One struct gathers every tunable the paper's evaluation varies: worker
//! count, task slots per worker (32 in the paper), buffer size, affinity,
//! temperature thresholds, and WAL behaviour. Defaults are scaled to a small
//! development machine; the benchmark harness overrides them per experiment.

use serde::{Deserialize, Serialize};
use std::path::PathBuf;

/// Size of every data page. The paper does not pin a page size; 16 KiB
/// matches LeanStore-family systems and divides evenly into PAX minipages.
pub const PAGE_SIZE: usize = 16 * 1024;

/// Full kernel configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KernelConfig {
    /// Number of worker threads in the co-routine pool. The paper matches
    /// this to the CPU core count (§7.1 fn 1).
    pub workers: usize,
    /// Task slots per worker (32 in every paper experiment, §9).
    pub slots_per_worker: usize,
    /// Total Main Storage budget in buffer frames, split evenly across
    /// worker partitions (§7.1: each worker manages its own partition).
    pub buffer_frames: usize,
    /// Workload affinity (§9): bind each warehouse's transactions to a home
    /// worker so cross-worker contention disappears. We reproduce this as
    /// partition affinity rather than CPU pinning (see DESIGN.md).
    pub affinity: bool,
    /// Directory for the Data Page File, Data Block File and WAL files.
    pub data_dir: PathBuf,
    /// Whether commits wait for their slot's WAL writer to reach the disk
    /// ("WAL sync is enabled" in §9). Off = fully asynchronous commit.
    pub wal_sync: bool,
    /// Group-commit window for each slot WAL writer, in microseconds.
    pub wal_group_commit_us: u64,
    /// Fraction of a partition's frames kept free; dropping below it
    /// triggers page swaps on the dedicated task slot (§7.1).
    pub free_frame_watermark: f64,
    /// Run GC after this many transactions complete on a worker (§7.1).
    pub gc_every_txns: u64,
    /// Leaf pages whose OLTP access count over the sampling window stays
    /// below this threshold are candidates for freezing (§5.2).
    pub freeze_access_threshold: u64,
    /// Number of consecutive cold leaf pages compressed into one frozen
    /// data block (§5.2).
    pub freeze_batch_pages: usize,
    /// Read count above which a frozen block's rows are warmed back into
    /// hot storage (§5.2 case 3).
    pub warm_read_threshold: u64,
    /// Lock wait budget before a transaction gives up with `LockTimeout`.
    pub lock_timeout_ms: u64,
}

impl Default for KernelConfig {
    fn default() -> Self {
        KernelConfig {
            workers: std::thread::available_parallelism().map_or(2, |n| n.get()),
            slots_per_worker: 32,
            buffer_frames: 4096, // 64 MiB of 16 KiB frames
            affinity: true,
            data_dir: std::env::temp_dir().join("phoebedb"),
            wal_sync: true,
            wal_group_commit_us: 200,
            free_frame_watermark: 0.10,
            gc_every_txns: 64,
            freeze_access_threshold: 2,
            freeze_batch_pages: 8,
            warm_read_threshold: 16,
            lock_timeout_ms: 2_000,
        }
    }
}

impl KernelConfig {
    /// A configuration suitable for unit tests: tiny buffers, one worker,
    /// a fresh unique temp directory, and synchronous-but-fast WAL.
    pub fn for_tests() -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "phoebedb-test-{}-{}",
            std::process::id(),
            n
        ));
        KernelConfig {
            workers: 2,
            slots_per_worker: 4,
            buffer_frames: 256,
            data_dir: dir,
            wal_group_commit_us: 50,
            ..KernelConfig::default()
        }
    }

    /// Frames in each worker's buffer partition (at least one).
    pub fn frames_per_partition(&self) -> usize {
        (self.buffer_frames / self.workers.max(1)).max(1)
    }

    /// Total task slots across the pool.
    pub fn total_slots(&self) -> usize {
        self.workers * self.slots_per_worker
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = KernelConfig::default();
        assert!(c.workers >= 1);
        assert_eq!(c.slots_per_worker, 32);
        assert!(c.buffer_frames > 0);
        assert!(c.wal_sync);
    }

    #[test]
    fn partition_math_never_returns_zero() {
        let mut c = KernelConfig::default();
        c.buffer_frames = 1;
        c.workers = 64;
        assert_eq!(c.frames_per_partition(), 1);
    }

    #[test]
    fn test_config_dirs_are_unique() {
        let a = KernelConfig::for_tests();
        let b = KernelConfig::for_tests();
        assert_ne!(a.data_dir, b.data_dir);
    }

    #[test]
    fn total_slots_is_product() {
        let mut c = KernelConfig::for_tests();
        c.workers = 3;
        c.slots_per_worker = 5;
        assert_eq!(c.total_slots(), 15);
    }
}
