//! Per-component cycle accounting and operational counters.
//!
//! The paper's Exp 7 (Figure 12) breaks the cost of a TPC-C transaction
//! down into WAL, MVCC, latching, locking, buffer management, GC, and
//! "effective computation". We reproduce that with scoped timers: every
//! kernel subsystem wraps its hot sections in [`Metrics::timer`], and the
//! remainder of a transaction's wall time is attributed to effective
//! computation. Counters additionally track the I/O volumes needed for
//! Exp 3/4 (WAL MB/s, data page read/write MB/s).
//!
//! To keep the accounting itself off the contended path, counters are
//! sharded per worker. Worker threads announce themselves once via
//! [`set_current_worker`]; all other threads fall into a shared external
//! shard. A snapshot sums the shards.

use crate::hist::{HistogramSnapshot, LatencyHistogram, LatencySite, NSITES};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// The cost components of Figure 12.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Component {
    /// De-facto transaction work: everything not claimed by the others.
    Compute = 0,
    /// Building, copying and flushing WAL records (§8).
    Wal = 1,
    /// UNDO creation, version-chain traversal, visibility checks (§6.2).
    Mvcc = 2,
    /// Page latch acquisition, including optimistic restarts (§7.2).
    Latch = 3,
    /// Tuple / transaction-ID / table lock management (§7.2).
    Lock = 4,
    /// Buffer manager: frame allocation, swizzling, page swaps (§5.3).
    Buffer = 5,
    /// Garbage collection of UNDO logs, twin tables, deleted tuples (§7.3).
    Gc = 6,
}

/// All components, in display order for the breakdown figure.
pub const COMPONENTS: [Component; 7] = [
    Component::Compute,
    Component::Wal,
    Component::Mvcc,
    Component::Latch,
    Component::Lock,
    Component::Buffer,
    Component::Gc,
];

impl Component {
    pub fn name(self) -> &'static str {
        match self {
            Component::Compute => "effective computation",
            Component::Wal => "WAL",
            Component::Mvcc => "MVCC",
            Component::Latch => "latching",
            Component::Lock => "locking",
            Component::Buffer => "buffer manager",
            Component::Gc => "GC",
        }
    }
}

const NCOMP: usize = 7;

/// Operational counters used by the throughput/I/O experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    Commits = 0,
    Aborts = 1,
    /// Committed TPC-C NewOrder transactions (the tpmC numerator).
    NewOrders = 2,
    /// Pages read from the Data Page File into Main Storage.
    PageReads = 3,
    /// Pages written (evicted/checkpointed) to the Data Page File.
    PageWrites = 4,
    /// Bytes appended to WAL buffers.
    WalBytes = 5,
    /// Physical WAL flush operations completed.
    WalFlushes = 6,
    /// Bytes physically flushed to WAL files.
    WalFlushedBytes = 7,
    /// UNDO logs reclaimed by GC.
    UndoReclaimed = 8,
    /// Commits that RFA allowed to skip waiting on remote WAL writers.
    RfaEarlyCommits = 9,
    /// Commits that had to wait for a remote (cross-slot) flush.
    RemoteFlushWaits = 10,
    /// Optimistic latch validation failures that forced a restart.
    LatchRestarts = 11,
    /// Leaf pages compressed into frozen data blocks.
    PagesFrozen = 12,
    /// Frozen rows warmed back into hot storage.
    RowsWarmed = 13,
    /// Committed WAL records replayed by crash recovery in
    /// `Database::open`.
    RecoveryRecordsReplayed = 14,
    /// Bytes discarded from WAL tails during recovery (torn or partial
    /// trailing records past the last CRC-valid one).
    RecoveryTailBytesDiscarded = 15,
    /// Interleaved multi-key batches executed (`multi_get`,
    /// `multi_lookup`, `multi_update_rmw`).
    BatchGets = 16,
    /// Total keys submitted across all batches; `BatchKeys / BatchGets`
    /// is the mean batch depth.
    BatchKeys = 17,
    /// Software prefetches issued by suspended descents for their next
    /// B-tree node.
    PrefetchesIssued = 18,
    /// Descents that suspended on a cold page and handed the fault to the
    /// background fault service instead of blocking.
    FaultSuspends = 19,
    /// Incident records written by the stall watchdog.
    WatchdogIncidents = 20,
}

const NCTR: usize = 21;

/// All counters with stable names (report order).
pub const COUNTERS: [(Counter, &str); NCTR] = [
    (Counter::Commits, "commits"),
    (Counter::Aborts, "aborts"),
    (Counter::NewOrders, "new_orders"),
    (Counter::PageReads, "page_reads"),
    (Counter::PageWrites, "page_writes"),
    (Counter::WalBytes, "wal_bytes"),
    (Counter::WalFlushes, "wal_flushes"),
    (Counter::WalFlushedBytes, "wal_flushed_bytes"),
    (Counter::UndoReclaimed, "undo_reclaimed"),
    (Counter::RfaEarlyCommits, "rfa_early_commits"),
    (Counter::RemoteFlushWaits, "remote_flush_waits"),
    (Counter::LatchRestarts, "latch_restarts"),
    (Counter::PagesFrozen, "pages_frozen"),
    (Counter::RowsWarmed, "rows_warmed"),
    (Counter::RecoveryRecordsReplayed, "recovery_records_replayed"),
    (Counter::RecoveryTailBytesDiscarded, "recovery_tail_bytes_discarded"),
    (Counter::BatchGets, "batch_gets"),
    (Counter::BatchKeys, "batch_keys"),
    (Counter::PrefetchesIssued, "prefetches_issued"),
    (Counter::FaultSuspends, "fault_suspends"),
    (Counter::WatchdogIncidents, "watchdog_incidents"),
];

#[derive(Default)]
struct Shard {
    comp_ns: [AtomicU64; NCOMP],
    comp_ops: [AtomicU64; NCOMP],
    counters: [AtomicU64; NCTR],
    /// Per-site latency histograms (§ Exp 7: percentile substrate).
    hists: [LatencyHistogram; NSITES],
}

thread_local! {
    static CURRENT_WORKER: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// Mark the calling thread as worker `id` for metric sharding. Called once
/// by the runtime when a worker thread starts.
pub fn set_current_worker(id: usize) {
    CURRENT_WORKER.with(|c| c.set(id));
}

/// The worker index of the calling thread, if it is a pool worker.
pub fn current_worker() -> Option<usize> {
    let v = CURRENT_WORKER.with(|c| c.get());
    (v != usize::MAX).then_some(v)
}

/// Sharded metrics registry; one instance per kernel.
pub struct Metrics {
    shards: Box<[Shard]>,
    /// The kernel flight recorder, sharded the same way. Disabled by
    /// default; riding on `Metrics` lets every subsystem that already
    /// holds a metrics handle emit trace events without new plumbing.
    tracer: std::sync::Arc<crate::trace::Tracer>,
}

impl Metrics {
    /// Create a registry for `workers` pool threads (plus one shard for
    /// everything else: loaders, background threads, tests). The flight
    /// recorder is disabled; see [`Metrics::with_tracer`].
    pub fn new(workers: usize) -> Self {
        Metrics::with_tracer(workers, std::sync::Arc::new(crate::trace::Tracer::disabled()))
    }

    /// Create a registry with an attached flight recorder.
    pub fn with_tracer(workers: usize, tracer: std::sync::Arc<crate::trace::Tracer>) -> Self {
        let mut shards = Vec::with_capacity(workers + 1);
        shards.resize_with(workers + 1, Shard::default);
        Metrics { shards: shards.into_boxed_slice(), tracer }
    }

    /// The attached flight recorder (disabled unless configured).
    #[inline]
    pub fn tracer(&self) -> &crate::trace::Tracer {
        &self.tracer
    }

    #[inline]
    fn shard(&self) -> &Shard {
        let idx = CURRENT_WORKER.with(|c| c.get());
        let last = self.shards.len() - 1;
        &self.shards[if idx < last { idx } else { last }]
    }

    /// Start a scoped timer attributing elapsed time to `component`.
    #[inline]
    pub fn timer(&self, component: Component) -> ScopedTimer<'_> {
        ScopedTimer { metrics: self, component, start: Instant::now() }
    }

    /// Record `ns` nanoseconds and one operation against `component`.
    #[inline]
    pub fn record(&self, component: Component, ns: u64) {
        let s = self.shard();
        s.comp_ns[component as usize].fetch_add(ns, Ordering::Relaxed);
        s.comp_ops[component as usize].fetch_add(1, Ordering::Relaxed);
    }

    /// Bump a counter by `n`.
    #[inline]
    pub fn add(&self, counter: Counter, n: u64) {
        self.shard().counters[counter as usize].fetch_add(n, Ordering::Relaxed);
    }

    /// Bump a counter by one.
    #[inline]
    pub fn incr(&self, counter: Counter) {
        self.add(counter, 1);
    }

    /// Record one latency observation (nanoseconds) at `site` into the
    /// calling worker's lock-free histogram shard.
    #[inline]
    pub fn record_latency(&self, site: LatencySite, ns: u64) {
        self.shard().hists[site as usize].record(ns);
    }

    /// Start a scoped timer that records its elapsed time into `site`'s
    /// latency histogram when dropped.
    #[inline]
    pub fn latency_timer(&self, site: LatencySite) -> LatencyTimer<'_> {
        LatencyTimer { metrics: self, site, start: Instant::now() }
    }

    /// Sum all shards into an immutable snapshot — O(workers) merges of
    /// fixed-size arrays, no locks taken.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        for s in self.shards.iter() {
            for i in 0..NCOMP {
                snap.comp_ns[i] += s.comp_ns[i].load(Ordering::Relaxed);
                snap.comp_ops[i] += s.comp_ops[i].load(Ordering::Relaxed);
            }
            for i in 0..NCTR {
                snap.counters[i] += s.counters[i].load(Ordering::Relaxed);
            }
            for i in 0..NSITES {
                s.hists[i].merge_into(&mut snap.latency[i]);
            }
        }
        snap
    }
}

/// RAII guard produced by [`Metrics::timer`].
pub struct ScopedTimer<'a> {
    metrics: &'a Metrics,
    component: Component,
    start: Instant,
}

impl Drop for ScopedTimer<'_> {
    fn drop(&mut self) {
        let ns = self.start.elapsed().as_nanos() as u64;
        self.metrics.record(self.component, ns);
    }
}

/// RAII guard produced by [`Metrics::latency_timer`].
pub struct LatencyTimer<'a> {
    metrics: &'a Metrics,
    site: LatencySite,
    start: Instant,
}

impl Drop for LatencyTimer<'_> {
    fn drop(&mut self) {
        let ns = self.start.elapsed().as_nanos() as u64;
        self.metrics.record_latency(self.site, ns);
    }
}

/// A summed, point-in-time view of a [`Metrics`] registry.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    comp_ns: [u64; NCOMP],
    comp_ops: [u64; NCOMP],
    counters: [u64; NCTR],
    latency: [HistogramSnapshot; NSITES],
}

impl MetricsSnapshot {
    pub fn component_ns(&self, c: Component) -> u64 {
        self.comp_ns[c as usize]
    }

    pub fn component_ops(&self, c: Component) -> u64 {
        self.comp_ops[c as usize]
    }

    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c as usize]
    }

    /// The merged latency histogram for one instrumented site.
    pub fn latency(&self, site: LatencySite) -> &HistogramSnapshot {
        &self.latency[site as usize]
    }

    /// `self - earlier`, element-wise (for interval reporting).
    pub fn delta_since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let mut out = MetricsSnapshot::default();
        for i in 0..NCOMP {
            out.comp_ns[i] = self.comp_ns[i].saturating_sub(earlier.comp_ns[i]);
            out.comp_ops[i] = self.comp_ops[i].saturating_sub(earlier.comp_ops[i]);
        }
        for i in 0..NCTR {
            out.counters[i] = self.counters[i].saturating_sub(earlier.counters[i]);
        }
        for i in 0..NSITES {
            out.latency[i] = self.latency[i].delta_since(&earlier.latency[i]);
        }
        out
    }

    /// Component shares of total accounted time, as Figure 12 reports.
    /// `total_busy_ns` should be the transactions' total wall time; the part
    /// not claimed by any instrumented component is booked as Compute.
    pub fn breakdown(&self, total_busy_ns: u64) -> Vec<(Component, f64)> {
        let instrumented: u64 = COMPONENTS.iter().skip(1).map(|&c| self.component_ns(c)).sum();
        let total = total_busy_ns.max(instrumented);
        let compute = total - instrumented;
        let mut out = Vec::with_capacity(NCOMP);
        out.push((Component::Compute, compute as f64 / total.max(1) as f64));
        for &c in COMPONENTS.iter().skip(1) {
            out.push((c, self.component_ns(c) as f64 / total.max(1) as f64));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_attributes_time_to_component() {
        let m = Metrics::new(1);
        {
            let _t = m.timer(Component::Wal);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let s = m.snapshot();
        assert!(s.component_ns(Component::Wal) >= 1_000_000);
        assert_eq!(s.component_ops(Component::Wal), 1);
        assert_eq!(s.component_ns(Component::Gc), 0);
    }

    #[test]
    fn counters_accumulate_across_threads() {
        let m = std::sync::Arc::new(Metrics::new(2));
        let handles: Vec<_> = (0..2)
            .map(|w| {
                let m = m.clone();
                std::thread::spawn(move || {
                    set_current_worker(w);
                    for _ in 0..100 {
                        m.incr(Counter::Commits);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        m.add(Counter::Commits, 5); // external shard
        assert_eq!(m.snapshot().counter(Counter::Commits), 205);
    }

    #[test]
    fn delta_subtracts_elementwise() {
        let m = Metrics::new(1);
        m.add(Counter::WalBytes, 100);
        let a = m.snapshot();
        m.add(Counter::WalBytes, 50);
        let b = m.snapshot();
        assert_eq!(b.delta_since(&a).counter(Counter::WalBytes), 50);
    }

    #[test]
    fn breakdown_sums_to_one_and_books_remainder_as_compute() {
        let m = Metrics::new(1);
        m.record(Component::Wal, 300);
        m.record(Component::Mvcc, 200);
        let shares = m.snapshot().breakdown(1_000);
        let total: f64 = shares.iter().map(|(_, f)| f).sum();
        assert!((total - 1.0).abs() < 1e-9);
        let compute = shares.iter().find(|(c, _)| *c == Component::Compute).unwrap().1;
        assert!((compute - 0.5).abs() < 1e-9);
    }

    #[test]
    fn breakdown_handles_overcounted_busy_time() {
        let m = Metrics::new(1);
        m.record(Component::Wal, 2_000);
        // busy time below instrumented time must not underflow
        let shares = m.snapshot().breakdown(1_000);
        assert!(shares.iter().all(|(_, f)| *f >= 0.0));
    }

    #[test]
    fn external_threads_use_last_shard() {
        set_current_worker(usize::MAX); // ensure unset semantics on this thread
        let m = Metrics::new(3);
        m.incr(Counter::Aborts);
        assert_eq!(m.snapshot().counter(Counter::Aborts), 1);
    }
}
