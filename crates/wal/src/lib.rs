//! Parallel Write-Ahead Logging with Remote Flush Avoidance (§8).
//!
//! PhoebeDB follows "Non-Force, Steal": commits need not force all data
//! pages, and dirty pages of uncommitted transactions may reach disk (the
//! buffer pool's write barrier keeps WAL ahead of data). The flushing
//! bottleneck of a single serialized log is removed by giving **each task
//! slot its own WAL writer and file** ([`writer`]); recovery re-orders the
//! files by GSN ([`recovery`]).
//!
//! Remote Flush Avoidance: a committing transaction that only touched data
//! last written by its own slot waits only for *its own* writer to flush —
//! no rendezvous with unrelated loggers. Only transactions that built a
//! cross-slot dependency (they modified a tuple/page whose previous writer
//! on another slot is not yet durable) wait for the global flush horizon
//! ([`writer::WalHub::ensure_durable_gsn`]).
//!
//! Physical flushing goes through [`aio`], an asynchronous-I/O substrate
//! with submission/completion queues standing in for io_uring (see
//! DESIGN.md's substitution table).

pub mod aio;
pub mod record;
pub mod recovery;
pub mod writer;

pub use aio::{AioPool, AioRequest};
pub use record::{crc32, RecordBody, WalRecord};
pub use recovery::{recover_dir, recover_dir_stats, RecoveredTxn, WalScanStats};
pub use writer::{CommitGuard, RfaState, WalHub, WalWriter};
