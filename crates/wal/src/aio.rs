//! Asynchronous I/O substrate — the io_uring stand-in (see DESIGN.md).
//!
//! The paper's Exp 3 relies on io_uring to keep many WAL flushes in flight
//! against the NVMe device. io_uring is not available in this build's
//! offline crate set, so this module reproduces the *model*: callers push
//! submissions into a queue and either poll or block on per-operation
//! completions, while a pool of I/O threads drains the queue. What matters
//! for the experiments — submission never blocks on the device, multiple
//! writes proceed concurrently, completions are reaped asynchronously — is
//! preserved.

use crossbeam::channel::{unbounded, Receiver, Sender};
use phoebe_common::error::Result;
use phoebe_common::fault::FaultFile;
use phoebe_common::sync::{Condvar, Rank, RankedMutex};
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One I/O submission. Files are [`FaultFile`] handles, so the whole AIO
/// path runs unchanged over the real filesystem or the fault-injecting
/// torture disk.
pub enum AioRequest {
    /// Positional write of `data` at `offset`.
    WriteAt { file: Arc<dyn FaultFile>, offset: u64, data: Vec<u8> },
    /// Durability barrier for everything previously written to `file`.
    Fsync { file: Arc<dyn FaultFile> },
}

/// Completion handle: one per submission.
pub struct Completion {
    state: RankedMutex<Option<io::Result<usize>>>,
    cv: Condvar,
}

impl Completion {
    fn new() -> Arc<Self> {
        Arc::new(Completion {
            state: RankedMutex::new(Rank::Aio, "aio.completion", None),
            cv: Condvar::new(),
        })
    }

    fn complete(&self, result: io::Result<usize>) {
        *self.state.lock() = Some(result);
        self.cv.notify_all();
    }

    /// Non-blocking poll (reap).
    pub fn try_reap(&self) -> Option<io::Result<usize>> {
        self.state.lock().take()
    }

    /// Block until complete.
    pub fn wait(&self) -> io::Result<usize> {
        let mut s = self.state.lock();
        while s.is_none() {
            s.wait(&self.cv);
        }
        s.take().expect("completion present")
    }

    pub fn is_done(&self) -> bool {
        self.state.lock().is_some()
    }
}

struct Submission {
    req: AioRequest,
    completion: Arc<Completion>,
}

/// A pool of I/O threads draining a submission queue.
pub struct AioPool {
    tx: RankedMutex<Option<Sender<Submission>>>,
    threads: RankedMutex<Vec<std::thread::JoinHandle<()>>>,
    submitted: AtomicU64,
    completed: Arc<AtomicU64>,
}

impl AioPool {
    pub fn new(io_threads: usize) -> Arc<Self> {
        let (tx, rx): (Sender<Submission>, Receiver<Submission>) = unbounded();
        let completed = Arc::new(AtomicU64::new(0));
        let mut threads = Vec::new();
        for i in 0..io_threads.max(1) {
            let rx = rx.clone();
            let completed = Arc::clone(&completed);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("phoebe-aio-{i}"))
                    .spawn(move || {
                        while let Ok(sub) = rx.recv() {
                            let result = match sub.req {
                                AioRequest::WriteAt { file, offset, data } => {
                                    file.write_all_at(offset, &data).map(|_| data.len())
                                }
                                AioRequest::Fsync { file } => file.sync_data().map(|_| 0),
                            };
                            // ORDERING: statistic counter; completion is
                            // published through `Completion`, not this.
                            completed.fetch_add(1, Ordering::Relaxed);
                            sub.completion.complete(result);
                        }
                    })
                    .expect("spawn aio thread"),
            );
        }
        Arc::new(AioPool {
            tx: RankedMutex::new(Rank::Aio, "aio.pool_tx", Some(tx)),
            threads: RankedMutex::new(Rank::Aio, "aio.pool_threads", threads),
            submitted: AtomicU64::new(0),
            completed,
        })
    }

    /// Submit without blocking; reap via the returned completion.
    pub fn submit(&self, req: AioRequest) -> Arc<Completion> {
        let completion = Completion::new();
        // ORDERING: statistic counter; the submission is ordered by the
        // channel send below.
        self.submitted.fetch_add(1, Ordering::Relaxed);
        self.tx
            .lock()
            .as_ref()
            .expect("aio pool alive")
            .send(Submission { req, completion: Arc::clone(&completion) })
            .expect("aio workers alive");
        completion
    }

    /// Submit a write followed by an fsync and wait for both (the group
    /// commit tail).
    pub fn write_and_sync(
        &self,
        file: &Arc<dyn FaultFile>,
        offset: u64,
        data: Vec<u8>,
    ) -> Result<usize> {
        let w = self.submit(AioRequest::WriteAt { file: Arc::clone(file), offset, data });
        let n = w.wait()?;
        let s = self.submit(AioRequest::Fsync { file: Arc::clone(file) });
        s.wait()?;
        Ok(n)
    }

    /// (submitted, completed) operation counts.
    pub fn stats(&self) -> (u64, u64) {
        // ORDERING: diagnostic reads; the pair may be mutually stale.
        (self.submitted.load(Ordering::Relaxed), self.completed.load(Ordering::Relaxed))
    }

    /// Stop the pool; pending submissions are drained first.
    pub fn shutdown(&self) {
        drop(self.tx.lock().take()); // close the queue
        for t in std::mem::take(&mut *self.threads.lock()) {
            let _ = t.join();
        }
    }
}

impl Drop for AioPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phoebe_common::fault::{FaultFs, OsFs};

    fn tmpfile(name: &str) -> Arc<dyn FaultFile> {
        let dir = phoebe_common::KernelConfig::for_tests().data_dir;
        OsFs.create(&dir.join(name)).unwrap()
    }

    #[test]
    fn write_and_reap_roundtrip() {
        let pool = AioPool::new(2);
        let f = tmpfile("a.log");
        let c = pool.submit(AioRequest::WriteAt {
            file: Arc::clone(&f),
            offset: 0,
            data: b"hello".to_vec(),
        });
        assert_eq!(c.wait().unwrap(), 5);
        let mut buf = [0u8; 5];
        f.read_exact_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"hello");
    }

    #[test]
    fn many_concurrent_submissions_all_complete() {
        let pool = AioPool::new(3);
        let f = tmpfile("b.log");
        let completions: Vec<_> = (0..100u64)
            .map(|i| {
                pool.submit(AioRequest::WriteAt {
                    file: Arc::clone(&f),
                    offset: i * 8,
                    data: i.to_le_bytes().to_vec(),
                })
            })
            .collect();
        for c in completions {
            c.wait().unwrap();
        }
        let (sub, comp) = pool.stats();
        assert_eq!(sub, 100);
        assert_eq!(comp, 100);
        for i in 0..100u64 {
            let mut buf = [0u8; 8];
            f.read_exact_at(i * 8, &mut buf).unwrap();
            assert_eq!(u64::from_le_bytes(buf), i);
        }
    }

    #[test]
    fn write_and_sync_is_durable_barrier() {
        let pool = AioPool::new(1);
        let f = tmpfile("c.log");
        let n = pool.write_and_sync(&f, 0, b"durable".to_vec()).unwrap();
        assert_eq!(n, 7);
    }

    #[test]
    fn try_reap_polls_without_blocking() {
        let pool = AioPool::new(1);
        let f = tmpfile("d.log");
        let c = pool.submit(AioRequest::Fsync { file: f });
        // Eventually done; poll-style.
        let mut spins = 0;
        loop {
            if let Some(r) = c.try_reap() {
                r.unwrap();
                break;
            }
            spins += 1;
            assert!(spins < 1_000_000, "completion never arrived");
            std::thread::yield_now();
        }
    }
}
