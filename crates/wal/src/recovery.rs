//! Recovery: merge the per-slot WAL files by GSN and replay committed
//! transactions (§8).
//!
//! Distributed logging orders recovery with the GSN: within one file the
//! LSN is already monotone; across files, records are merged by
//! `(gsn, slot, lsn)`. Because PhoebeDB's records are logical, replay
//! groups each committed transaction's operations and re-applies the
//! transactions in commit-timestamp order, which reproduces the serial
//! history the MVCC engine admitted. Transactions without a commit record
//! (in flight at the crash, or aborted) are discarded — their in-place
//! page effects were never checkpointed, and UNDO was memory-only, exactly
//! the "Non-Force" contract.

use crate::record::{RecordBody, WalRecord};
use phoebe_common::error::Result;
use phoebe_common::ids::{Timestamp, Xid};
use std::collections::HashMap;
use std::path::Path;

/// One committed transaction reassembled from the logs.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveredTxn {
    pub xid: Xid,
    pub cts: Timestamp,
    /// Highest GSN across this transaction's records — for the oracle
    /// invariant that recovery never resurrects anything past the durable
    /// GSN the crashed incarnation acknowledged.
    pub max_gsn: u64,
    /// Operations in original (LSN) order.
    pub ops: Vec<RecordBody>,
}

/// Volume accounting for one recovery scan: how much log the scan read
/// and how much torn tail it discarded (surfaced as kernel counters).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct WalScanStats {
    /// CRC-valid records decoded across all scanned files.
    pub records: u64,
    /// Bytes past the last CRC-valid record, summed across files (torn
    /// or partial trailing writes the crash left behind).
    pub tail_bytes_discarded: u64,
}

/// Read one WAL file into records (stopping at a torn tail).
pub fn read_wal_file(path: &Path) -> Result<Vec<WalRecord>> {
    read_wal_file_stats(path, &mut WalScanStats::default())
}

/// [`read_wal_file`], accumulating scan volume into `stats`.
pub fn read_wal_file_stats(path: &Path, stats: &mut WalScanStats) -> Result<Vec<WalRecord>> {
    let buf = std::fs::read(path)?;
    let mut out = Vec::new();
    let mut at = 0;
    while let Some((rec, next)) = WalRecord::decode_at(&buf, at)? {
        out.push(rec);
        at = next;
    }
    stats.records += out.len() as u64;
    stats.tail_bytes_discarded += (buf.len() - at) as u64;
    Ok(out)
}

/// Merge per-slot record streams by `(gsn, slot, lsn)` — the global
/// recovery order.
pub fn merge_by_gsn(mut streams: Vec<Vec<WalRecord>>) -> Vec<WalRecord> {
    let mut merged = Vec::with_capacity(streams.iter().map(Vec::len).sum());
    for (slot, s) in streams.iter_mut().enumerate() {
        debug_assert!(
            s.windows(2).all(|w| w[0].lsn < w[1].lsn),
            "slot {slot} stream must be LSN-ordered"
        );
        merged.append(s);
    }
    // A k-way merge would also work; a sort by the same key is simpler and
    // recovery is not a hot path.
    merged.sort_by_key(|r| (r.gsn, r.lsn));
    merged
}

/// Scan a WAL directory (`wal_slot_*.log`) and reassemble every committed
/// transaction, ordered by commit timestamp.
pub fn recover_dir(dir: &Path) -> Result<Vec<RecoveredTxn>> {
    recover_dir_stats(dir).map(|(txns, _)| txns)
}

/// [`recover_dir`], additionally returning scan volume accounting.
pub fn recover_dir_stats(dir: &Path) -> Result<(Vec<RecoveredTxn>, WalScanStats)> {
    let mut stats = WalScanStats::default();
    let mut streams = Vec::new();
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("wal_slot_") && n.ends_with(".log"))
        })
        .collect();
    entries.sort();
    for path in entries {
        streams.push(read_wal_file_stats(&path, &mut stats)?);
    }
    let merged = merge_by_gsn(streams);

    let mut txns: HashMap<u64, RecoveredTxn> = HashMap::new();
    let mut committed: Vec<RecoveredTxn> = Vec::new();
    let fresh = |xid: Xid| RecoveredTxn { xid, cts: 0, max_gsn: 0, ops: Vec::new() };
    for rec in merged {
        match rec.body {
            RecordBody::Begin => {
                let t = txns.entry(rec.xid.raw()).or_insert_with(|| fresh(rec.xid));
                t.max_gsn = t.max_gsn.max(rec.gsn.raw());
            }
            RecordBody::Commit { cts } => {
                if let Some(mut t) = txns.remove(&rec.xid.raw()) {
                    t.cts = cts;
                    t.max_gsn = t.max_gsn.max(rec.gsn.raw());
                    committed.push(t);
                }
            }
            RecordBody::Abort => {
                txns.remove(&rec.xid.raw());
            }
            op => {
                // Ops may arrive before Begin in the merged order only if
                // Begin was optimized away; tolerate by creating the entry.
                let t = txns.entry(rec.xid.raw()).or_insert_with(|| fresh(rec.xid));
                t.max_gsn = t.max_gsn.max(rec.gsn.raw());
                t.ops.push(op);
            }
        }
    }
    committed.sort_by_key(|t| t.cts);
    Ok((committed, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::{RfaState, WalHub};
    use phoebe_common::ids::{RowId, TableId};
    use phoebe_common::metrics::Metrics;
    use phoebe_common::KernelConfig;
    use phoebe_runtime::block_on;
    use phoebe_storage::schema::Value;
    use std::sync::Arc;
    use std::time::Duration;

    fn hub_in(dir: &Path, slots: usize) -> Arc<WalHub> {
        WalHub::new(dir, slots, 2, Duration::from_micros(100), true, Arc::new(Metrics::new(1)))
            .unwrap()
    }

    fn xid(n: u64) -> Xid {
        Xid::from_start_ts(n)
    }

    #[test]
    fn committed_transactions_are_recovered_in_cts_order() {
        let dir = KernelConfig::for_tests().data_dir;
        let h = hub_in(&dir, 2);
        // Txn A on slot 0: insert + update, commit @20.
        let mut rfa = RfaState::default();
        let g = h.stamp_write(&mut rfa, 0, None, 0);
        h.log_op(0, xid(1), g, RecordBody::Begin);
        h.log_op(
            0,
            xid(1),
            g,
            RecordBody::Insert { table: TableId(1), row: RowId(1), tuple: vec![Value::I64(1)] },
        );
        block_on(h.commit(0, xid(1), 20, &rfa)).unwrap();
        // Txn B on slot 1 commits earlier (@10).
        let mut rfa2 = RfaState::default();
        let g2 = h.stamp_write(&mut rfa2, 0, None, 1);
        h.log_op(1, xid(2), g2, RecordBody::Begin);
        h.log_op(
            1,
            xid(2),
            g2,
            RecordBody::Update {
                table: TableId(1),
                row: RowId(9),
                delta: vec![(0, Value::I64(5))],
            },
        );
        block_on(h.commit(1, xid(2), 10, &rfa2)).unwrap();
        // Txn C never commits.
        h.log_op(0, xid(3), g, RecordBody::Begin);
        h.log_op(0, xid(3), g, RecordBody::Delete { table: TableId(1), row: RowId(2) });
        h.flush_all().unwrap();
        h.shutdown();

        let recovered = recover_dir(&dir).unwrap();
        assert_eq!(recovered.len(), 2, "uncommitted txn discarded");
        assert_eq!(recovered[0].cts, 10);
        assert_eq!(recovered[1].cts, 20);
        assert_eq!(recovered[1].ops.len(), 1);
        assert!(matches!(recovered[1].ops[0], RecordBody::Insert { .. }));
    }

    #[test]
    fn aborted_transactions_are_discarded() {
        let dir = KernelConfig::for_tests().data_dir;
        let h = hub_in(&dir, 1);
        h.log_op(0, xid(1), 1, RecordBody::Begin);
        h.log_op(0, xid(1), 1, RecordBody::Delete { table: TableId(1), row: RowId(1) });
        h.log_op(0, xid(1), 1, RecordBody::Abort);
        h.flush_all().unwrap();
        h.shutdown();
        assert!(recover_dir(&dir).unwrap().is_empty());
    }

    #[test]
    fn merge_orders_across_streams_by_gsn() {
        let mk = |slot: u64, gsn: u64, lsn: u64| WalRecord {
            xid: xid(slot),
            gsn: phoebe_common::ids::Gsn(gsn),
            lsn: phoebe_common::ids::Lsn(lsn),
            body: RecordBody::Begin,
        };
        let merged =
            merge_by_gsn(vec![vec![mk(0, 1, 1), mk(0, 5, 2)], vec![mk(1, 2, 1), mk(1, 3, 2)]]);
        let gsns: Vec<u64> = merged.iter().map(|r| r.gsn.raw()).collect();
        assert_eq!(gsns, vec![1, 2, 3, 5]);
    }

    #[test]
    fn checksum_failing_garbage_tail_is_end_of_log() {
        // A crashed device can leave arbitrary junk after the last good
        // record (torn sector, recycled block). The CRC must classify any
        // such tail as end-of-log rather than an error or a phantom record.
        let dir = KernelConfig::for_tests().data_dir;
        let h = hub_in(&dir, 1);
        h.log_op(0, xid(1), 1, RecordBody::Begin);
        h.log_op(
            0,
            xid(1),
            1,
            RecordBody::Insert { table: TableId(1), row: RowId(1), tuple: vec![Value::I64(7)] },
        );
        block_on(h.commit(0, xid(1), 9, &RfaState::default())).unwrap();
        h.flush_all().unwrap();
        h.shutdown();
        let path = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .find(|p| p.to_string_lossy().contains("wal_slot_"))
            .unwrap();
        let clean = std::fs::read(&path).unwrap();
        // Several shapes of garbage: plausible-length frame with bad CRC,
        // huge length prefix, zero padding, and raw noise.
        let garbages: Vec<Vec<u8>> = vec![
            {
                // Well-formed length, corrupted payload => CRC mismatch.
                let mut g = 8u32.to_le_bytes().to_vec();
                g.extend_from_slice(&0xdead_beefu32.to_le_bytes());
                g.extend_from_slice(&[0xaa; 8]);
                g
            },
            (u32::MAX).to_le_bytes().to_vec(),
            vec![0u8; 64],
            vec![0x5a; 13],
        ];
        for (i, garbage) in garbages.iter().enumerate() {
            let mut bytes = clean.clone();
            bytes.extend_from_slice(garbage);
            std::fs::write(&path, &bytes).unwrap();
            let recovered = recover_dir(&dir).unwrap();
            assert_eq!(recovered.len(), 1, "garbage shape {i}: intact prefix must survive");
            assert_eq!(recovered[0].cts, 9, "garbage shape {i}");
            assert_eq!(recovered[0].ops.len(), 1, "garbage shape {i}");
        }
    }

    #[test]
    fn shuffled_worker_interleavings_recover_identical_committed_set() {
        // Property: the committed set reassembled from the per-slot logs
        // is a pure function of what committed — not of how the concurrent
        // workers' appends interleaved. Emit the same transactions under
        // seed-shuffled slot assignments and op interleavings and demand
        // bit-identical recovery.
        use rand::rngs::StdRng;
        use rand::seq::SliceRandom;
        use rand::{RngExt, SeedableRng};

        let canonical: Vec<RecoveredTxn> = emit_interleaved(0);
        assert_eq!(canonical.len(), 6, "all six committed transactions recovered");
        for seed in 1..12u64 {
            let got = emit_interleaved(seed);
            assert_eq!(got, canonical, "seed {seed}: committed set depends on interleaving");
        }

        /// Log 8 transactions (6 commit, 1 aborts, 1 stays in flight)
        /// with seed-driven slot assignment and round-robin shuffling,
        /// then recover. Returns committed txns with per-run fields
        /// (gsn) normalised away.
        fn emit_interleaved(seed: u64) -> Vec<RecoveredTxn> {
            let mut rng = StdRng::seed_from_u64(seed);
            let dir = KernelConfig::for_tests().data_dir;
            let h = hub_in(&dir, 4);
            let slots: Vec<usize> = (0..8).map(|_| rng.random_range(0..4usize)).collect();
            // Each txn runs three phases: Begin, one Insert, then
            // Commit/Abort/nothing. Shuffling the txn order inside each
            // phase wave permutes the cross-worker interleaving while
            // preserving every txn's own op order.
            let mut phases: Vec<(usize, u8)> =
                (0..8).flat_map(|t| [(t, 0u8), (t, 1), (t, 2)]).collect();
            phases.sort_by_key(|&(_, p)| p);
            let mut waves: Vec<Vec<(usize, u8)>> =
                vec![phases[0..8].to_vec(), phases[8..16].to_vec(), phases[16..24].to_vec()];
            for w in &mut waves {
                w.shuffle(&mut rng);
            }
            for (t, phase) in waves.concat() {
                let slot = slots[t];
                let x = xid(t as u64 + 1);
                match phase {
                    0 => {
                        let mut rfa = RfaState::default();
                        let g = h.stamp_write(&mut rfa, 0, None, slot);
                        h.log_op(slot, x, g, RecordBody::Begin);
                    }
                    1 => {
                        h.log_op(
                            slot,
                            x,
                            h.current_gsn(),
                            RecordBody::Insert {
                                table: TableId(1),
                                row: RowId(t as u64 + 1),
                                tuple: vec![Value::I64(t as i64)],
                            },
                        );
                    }
                    _ => match t {
                        6 => {
                            h.log_op(slot, x, h.current_gsn(), RecordBody::Abort);
                        }
                        7 => {} // stays in flight; discarded at recovery
                        _ => {
                            block_on(h.commit(slot, x, (t as u64 + 1) * 10, &RfaState::default()))
                                .unwrap();
                        }
                    },
                }
            }
            h.flush_all().unwrap();
            h.shutdown();
            let mut got = recover_dir(&dir).unwrap();
            for t in &mut got {
                t.max_gsn = 0; // GSNs differ run to run; the *set* must not
            }
            got
        }
    }

    #[test]
    fn torn_tail_loses_only_the_tail() {
        let dir = KernelConfig::for_tests().data_dir;
        let h = hub_in(&dir, 1);
        h.log_op(0, xid(1), 1, RecordBody::Begin);
        block_on(h.commit(0, xid(1), 5, &RfaState::default())).unwrap();
        h.flush_all().unwrap();
        h.shutdown();
        // Corrupt the file tail.
        let path = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .find(|p| p.to_string_lossy().contains("wal_slot_"))
            .unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&[0xde, 0xad, 0xbe]);
        std::fs::write(&path, bytes).unwrap();
        let (recovered, stats) = recover_dir_stats(&dir).unwrap();
        assert_eq!(recovered.len(), 1, "intact prefix survives a torn tail");
        assert_eq!(stats.tail_bytes_discarded, 3, "the torn tail is accounted");
        assert_eq!(stats.records, 2, "Begin + Commit records scanned");
    }
}
