//! Per-task-slot WAL writers, group commit, and Remote Flush Avoidance
//! (§8 "Phoebe's Parallel WAL Design").
//!
//! Every task slot owns a [`WalWriter`]: an in-memory buffer plus its own
//! log file, so log *writing* never contends across slots. A background
//! flusher drains all buffers in parallel through the AIO pool (the
//! io_uring stand-in) on a group-commit cadence.
//!
//! GSN/LSN: every record carries the slot-local, strictly monotonic LSN
//! and a GSN that only advances on *cross-slot* modifications — touching a
//! page last written by another slot. Recovery merges the per-slot files
//! by GSN; commit-time flush waiting uses it for RFA:
//!
//! * no cross-slot dependency, or the remote writer already flushed the
//!   version we built on ⇒ commit waits only for the *own* slot's writer
//!   (the RFA early commit);
//! * otherwise the commit waits until every writer's durable horizon
//!   passes the transaction's max GSN.

use crate::aio::{AioPool, AioRequest};
use crate::record::{RecordBody, WalRecord};
use phoebe_common::error::{PhoebeError, Result};
use phoebe_common::fault::{FaultFile, FaultFs, OsFs};
use phoebe_common::hist::LatencySite;
use phoebe_common::ids::{Gsn, Lsn, Timestamp, Xid};
use phoebe_common::metrics::{Component, Counter, Metrics};
use phoebe_common::sync::{Condvar, Rank, RankedMutex};
use phoebe_common::trace::EventKind;
use phoebe_runtime::Notify;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The group-commit doorbell (event-driven flushing).
///
/// Committing transactions ring it; the flusher thread sleeps on the
/// condvar with the group-commit window as a *timeout* instead of
/// unconditionally sleeping the whole window. Under low load a commit
/// therefore waits one physical flush, not one full window; under high
/// load the flusher lingers briefly after each wake so concurrent
/// commits still batch into one fsync.
///
/// The counter lives under a ranked mutex; the flusher's timed block goes
/// through the ranked guard's condvar projection.
struct Doorbell {
    rings: RankedMutex<u64>,
    cv: Condvar,
}

impl Default for Doorbell {
    fn default() -> Self {
        Doorbell {
            rings: RankedMutex::new(Rank::WalDoorbell, "wal.doorbell", 0),
            cv: Condvar::new(),
        }
    }
}

impl Doorbell {
    /// Wake the flusher: a commit (or barrier) wants durability now.
    fn ring(&self) {
        *self.rings.lock() += 1;
        self.cv.notify_one();
    }

    /// Current ring count (a "have I seen everything" cursor).
    fn rings(&self) -> u64 {
        *self.rings.lock()
    }

    /// Block until the ring count advances past `seen` or `timeout`
    /// elapses. Returns the latest count.
    fn wait(&self, seen: u64, timeout: Duration) -> u64 {
        let mut rings = self.rings.lock();
        let deadline = Instant::now() + timeout;
        while *rings == seen {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            if rings.wait_for(&self.cv, deadline - now).timed_out() {
                break;
            }
        }
        *rings
    }
}

/// One slot's WAL writer.
pub struct WalWriter {
    pub slot: usize,
    file: Arc<dyn FaultFile>,
    buf: RankedMutex<Vec<u8>>,
    next_lsn: AtomicU64,
    appended_lsn: AtomicU64,
    appended_gsn: AtomicU64,
    flushed_lsn: AtomicU64,
    flushed_gsn: AtomicU64,
    file_off: AtomicU64,
    bytes_flushed: AtomicU64,
    durable: Notify,
    /// The hub's halt flag (log device failed): durability waiters check
    /// it so they error out instead of parking forever.
    halted: Arc<AtomicBool>,
    /// Bytes stolen from `buf` whose write/fsync has not been confirmed
    /// yet. While set, an empty buffer does NOT mean "everything appended
    /// is durable", so the free horizon catch-up must not run — after a
    /// failed round it would publish durability for bytes the device
    /// never fsynced.
    inflight: AtomicBool,
}

impl WalWriter {
    fn create(
        slot: usize,
        fs: &dyn FaultFs,
        path: &Path,
        halted: Arc<AtomicBool>,
    ) -> Result<Arc<Self>> {
        let file = fs.create(path)?;
        Ok(Arc::new(WalWriter {
            slot,
            file,
            buf: RankedMutex::new(Rank::WalSlot, "wal.slot_buf", Vec::with_capacity(16 * 1024)),
            next_lsn: AtomicU64::new(1),
            appended_lsn: AtomicU64::new(0),
            appended_gsn: AtomicU64::new(0),
            flushed_lsn: AtomicU64::new(0),
            flushed_gsn: AtomicU64::new(0),
            file_off: AtomicU64::new(0),
            bytes_flushed: AtomicU64::new(0),
            durable: Notify::new(),
            halted,
            inflight: AtomicBool::new(false),
        }))
    }

    /// Append a record to the in-memory buffer; returns its LSN and size.
    pub fn append(&self, xid: Xid, gsn: Gsn, body: RecordBody) -> (Lsn, usize) {
        let mut buf = self.buf.lock();
        // ORDERING: the counter only needs unique, monotone values; all
        // inter-thread publication happens via the release store below,
        // under the buffer lock.
        let lsn = Lsn(self.next_lsn.fetch_add(1, Ordering::Relaxed));
        let rec = WalRecord { xid, gsn, lsn, body };
        let n = rec.encode_into(&mut buf);
        // Publish append marks under the buffer lock so the flusher's
        // snapshot (also under the lock) is consistent.
        self.appended_lsn.store(lsn.raw(), Ordering::Release);
        self.appended_gsn.fetch_max(gsn.raw(), Ordering::AcqRel);
        (lsn, n)
    }

    /// Phase 1 of a group-commit wave: steal the pending buffer and submit
    /// its write to the AIO pool *without waiting*, so the hub can overlap
    /// every slot's physical I/O. `None` when nothing was pending.
    fn submit_pending(&self, aio: &AioPool) -> Option<PendingFlush> {
        let (data, lsn_mark, gsn_mark) = {
            let mut buf = self.buf.lock();
            if buf.is_empty() {
                if self.inflight.load(Ordering::Acquire) {
                    // Another round stole this buffer and hasn't confirmed
                    // the write+fsync: an empty buffer proves nothing.
                    // Advancing the horizon here after a *failed* round
                    // would acknowledge commits the crash already ate.
                    return None;
                }
                // Nothing pending: the durable horizon catches up for free.
                let gsn = self.appended_gsn.load(Ordering::Acquire);
                let lsn = self.appended_lsn.load(Ordering::Acquire);
                let prev_gsn = self.flushed_gsn.fetch_max(gsn, Ordering::AcqRel);
                let prev_lsn = self.flushed_lsn.fetch_max(lsn, Ordering::AcqRel);
                if prev_gsn < gsn || prev_lsn < lsn {
                    // The horizon moved: parked `wait_lsn` callers must
                    // hear about it even though no bytes hit disk.
                    self.durable.notify_all();
                }
                return None;
            }
            let data = std::mem::take(&mut *buf);
            self.inflight.store(true, Ordering::Release);
            (
                data,
                self.appended_lsn.load(Ordering::Acquire),
                self.appended_gsn.load(Ordering::Acquire),
            )
        };
        let len = data.len() as u64;
        // ORDERING: file-offset reservation only needs atomicity; the
        // bytes themselves travel through the AIO submission channel.
        let off = self.file_off.fetch_add(len, Ordering::Relaxed);
        let write =
            aio.submit(AioRequest::WriteAt { file: Arc::clone(&self.file), offset: off, data });
        Some(PendingFlush { len, lsn_mark, gsn_mark, write })
    }

    /// Final phase: publish durability once the write (and fsync) landed.
    fn complete_flush(&self, p: &PendingFlush) {
        self.flushed_lsn.fetch_max(p.lsn_mark, Ordering::AcqRel);
        self.flushed_gsn.fetch_max(p.gsn_mark, Ordering::AcqRel);
        // ORDERING: statistic counter; durability is published by the
        // AcqRel horizon bumps above plus the notify below.
        self.bytes_flushed.fetch_add(p.len, Ordering::Relaxed);
        self.inflight.store(false, Ordering::Release);
        self.durable.notify_all();
    }

    /// Flush pending bytes through the AIO pool. Returns bytes flushed.
    pub fn flush(&self, aio: &AioPool, sync: bool) -> Result<u64> {
        let Some(p) = self.submit_pending(aio) else {
            return Ok(0);
        };
        p.write.wait()?;
        if sync {
            aio.submit(AioRequest::Fsync { file: Arc::clone(&self.file) }).wait()?;
        }
        self.complete_flush(&p);
        Ok(p.len)
    }

    /// Durable horizon for RFA: `u64::MAX` when nothing is pending,
    /// otherwise the highest GSN known durable.
    pub fn durable_horizon(&self) -> u64 {
        if self.flushed_lsn.load(Ordering::Acquire) >= self.appended_lsn.load(Ordering::Acquire) {
            u64::MAX
        } else {
            self.flushed_gsn.load(Ordering::Acquire)
        }
    }

    pub fn appended_lsn(&self) -> u64 {
        self.appended_lsn.load(Ordering::Acquire)
    }

    pub fn flushed_lsn(&self) -> u64 {
        self.flushed_lsn.load(Ordering::Acquire)
    }

    pub fn flushed_gsn(&self) -> u64 {
        self.flushed_gsn.load(Ordering::Acquire)
    }

    pub fn bytes_flushed(&self) -> u64 {
        // ORDERING: diagnostic read of a monotonic statistic.
        self.bytes_flushed.load(Ordering::Relaxed)
    }

    /// Await durability of `lsn` (own-slot commit wait).
    ///
    /// Parks the co-routine on the writer's durable [`Notify`] rather than
    /// spin-yielding: on a loaded machine a spinning committer competes
    /// with the flusher for CPU, which is exactly backwards. The subscribe
    /// → re-check → await order makes the wakeup race-free (the `Notify`
    /// is generation-counted, so a notification between the re-check and
    /// the await is never lost).
    ///
    /// Errs with [`PhoebeError::WalHalted`] if the log device failed
    /// before `lsn` became durable: the commit must NOT be acknowledged.
    pub async fn wait_lsn(&self, lsn: Lsn) -> Result<()> {
        loop {
            if self.flushed_lsn.load(Ordering::Acquire) >= lsn.raw() {
                return Ok(());
            }
            if self.halted.load(Ordering::Acquire) {
                return Err(PhoebeError::WalHalted);
            }
            let notified = self.durable.notified();
            if self.flushed_lsn.load(Ordering::Acquire) >= lsn.raw() {
                return Ok(());
            }
            if self.halted.load(Ordering::Acquire) {
                return Err(PhoebeError::WalHalted);
            }
            notified.await;
        }
    }
}

/// One writer's in-flight contribution to a group-commit wave.
struct PendingFlush {
    len: u64,
    lsn_mark: u64,
    gsn_mark: u64,
    write: Arc<crate::aio::Completion>,
}

/// Per-transaction RFA state (§8 "decoupled dependencies").
#[derive(Debug, Default, Clone)]
pub struct RfaState {
    /// Set when this transaction built on an unflushed version written by
    /// another slot.
    pub needs_remote: bool,
    /// Highest GSN among this transaction's own records.
    pub max_gsn: u64,
}

/// The WAL hub: all slot writers, the GSN clock, and the group-commit
/// flusher.
pub struct WalHub {
    writers: Vec<Arc<WalWriter>>,
    gsn: AtomicU64,
    aio: Arc<AioPool>,
    metrics: Arc<Metrics>,
    sync: bool,
    shutdown: Arc<AtomicBool>,
    /// Raised when a log write or fsync fails: the hub stops acknowledging
    /// durability and every waiter errors with [`PhoebeError::WalHalted`].
    halted: Arc<AtomicBool>,
    flusher: RankedMutex<Option<std::thread::JoinHandle<()>>>,
    /// Commit-side wakeup for the flusher thread.
    doorbell: Doorbell,
    /// Notified after every flush round; remote-dependency commits park
    /// here instead of polling `durable_gsn`.
    round_done: Notify,
    /// Watchdog probe: tracks how long the flushed-LSN horizon has been
    /// stuck behind the appended horizon. Off the commit/flush paths —
    /// only the telemetry/watchdog samplers lock it.
    horizon_probe: RankedMutex<HorizonProbe>,
}

/// State for [`WalHub::flush_horizon_age_ns`].
#[derive(Default)]
struct HorizonProbe {
    /// Sum of flushed LSNs across writers at the last observation.
    last_flushed: u64,
    /// When the horizon was last seen advancing (or fully caught up).
    since: Option<Instant>,
}

impl WalHub {
    /// Create writers for `slots` task slots under `dir` on the real
    /// filesystem and start the group-commit flusher.
    pub fn new(
        dir: &Path,
        slots: usize,
        aio_threads: usize,
        group_commit: Duration,
        sync: bool,
        metrics: Arc<Metrics>,
    ) -> Result<Arc<Self>> {
        Self::with_fs(dir, slots, aio_threads, group_commit, sync, metrics, Arc::new(OsFs))
    }

    /// [`WalHub::new`] over an injected filesystem — the seam the
    /// crash-torture harness uses to put a [`phoebe_common::fault::SimFs`]
    /// under every log writer.
    pub fn with_fs(
        dir: &Path,
        slots: usize,
        aio_threads: usize,
        group_commit: Duration,
        sync: bool,
        metrics: Arc<Metrics>,
        fs: Arc<dyn FaultFs>,
    ) -> Result<Arc<Self>> {
        std::fs::create_dir_all(dir)?;
        let halted = Arc::new(AtomicBool::new(false));
        let writers = (0..slots)
            .map(|s| {
                WalWriter::create(
                    s,
                    fs.as_ref(),
                    &dir.join(format!("wal_slot_{s:04}.log")),
                    Arc::clone(&halted),
                )
            })
            .collect::<Result<Vec<_>>>()?;
        let aio = AioPool::new(aio_threads);
        let hub = Arc::new(WalHub {
            writers,
            gsn: AtomicU64::new(1),
            aio,
            metrics,
            sync,
            shutdown: Arc::new(AtomicBool::new(false)),
            halted,
            flusher: RankedMutex::new(Rank::WalHub, "wal.hub_flusher", None),
            doorbell: Doorbell::default(),
            round_done: Notify::new(),
            horizon_probe: RankedMutex::new(
                Rank::WalHub,
                "wal.hub_horizon",
                HorizonProbe::default(),
            ),
        });
        let h = Arc::clone(&hub);
        *hub.flusher.lock() = Some(
            std::thread::Builder::new()
                .name("phoebe-wal-flusher".into())
                .spawn(move || {
                    // Event-driven group commit: sleep on the doorbell with
                    // the configured window as an upper bound. A commit at
                    // an idle moment is flushed immediately; a commit storm
                    // is absorbed by lingering for roughly the cost of the
                    // previous physical flush (adaptive batching) so many
                    // commits share one fsync without adding more latency
                    // than the flush itself already costs.
                    let mut seen = 0u64;
                    let mut last_round = Duration::ZERO;
                    while !h.shutdown.load(Ordering::Acquire) {
                        let rings = h.doorbell.wait(seen, group_commit);
                        if h.shutdown.load(Ordering::Acquire) {
                            break;
                        }
                        let rung = rings != seen;
                        if rung && !last_round.is_zero() {
                            std::thread::sleep(last_round.min(group_commit));
                        }
                        // Re-read after the linger so the commits that
                        // arrived during it don't trigger a redundant round.
                        seen = h.doorbell.rings();
                        let t0 = Instant::now();
                        let flushed = match h.flush_all() {
                            Ok(n) => n > 0,
                            // flush_all already halted the hub; retrying
                            // against a dead log device is pointless.
                            Err(_) => break,
                        };
                        last_round = if flushed { t0.elapsed() } else { Duration::ZERO };
                    }
                    let _ = h.flush_all();
                })
                .expect("spawn wal flusher"),
        );
        Ok(hub)
    }

    pub fn writer(&self, slot: usize) -> &Arc<WalWriter> {
        &self.writers[slot]
    }

    pub fn writer_count(&self) -> usize {
        self.writers.len()
    }

    pub fn current_gsn(&self) -> u64 {
        self.gsn.load(Ordering::Acquire)
    }

    /// Record a write against a page for RFA purposes and return the GSN to
    /// stamp on the WAL record and the page.
    ///
    /// `page_gsn`/`last_writer` describe the page *before* this write;
    /// `my_slot` is the flat slot index of the writing transaction.
    pub fn stamp_write(
        &self,
        rfa: &mut RfaState,
        page_gsn: u64,
        last_writer: Option<usize>,
        my_slot: usize,
    ) -> u64 {
        let cross = last_writer.is_some_and(|w| w != my_slot);
        let gsn = if cross {
            // Cross-slot modification: advance the global GSN past the
            // page's current GSN so recovery orders us after the remote
            // writer.
            let mut g = self.gsn.fetch_add(1, Ordering::AcqRel) + 1;
            while g <= page_gsn {
                g = self.gsn.fetch_add(1, Ordering::AcqRel) + 1;
            }
            // RFA check: if the previous writer's version is already
            // durable, no remote dependency arises.
            if let Some(w) = last_writer {
                if self.writers[w].durable_horizon() < page_gsn {
                    rfa.needs_remote = true;
                }
            }
            g
        } else {
            // Same-slot (or fresh) page: stay on the current GSN.
            self.gsn.load(Ordering::Acquire).max(page_gsn)
        };
        rfa.max_gsn = rfa.max_gsn.max(gsn);
        gsn
    }

    /// Append an operation record on the transaction's slot writer.
    pub fn log_op(&self, slot: usize, xid: Xid, gsn: u64, body: RecordBody) -> Lsn {
        let _t = self.metrics.timer(Component::Wal);
        let (lsn, n) = self.writers[slot].append(xid, Gsn(gsn), body);
        self.metrics.add(Counter::WalBytes, n as u64);
        lsn
    }

    /// Append the commit record and wait per RFA rules (when `wal_sync`).
    pub async fn commit(
        &self,
        slot: usize,
        xid: Xid,
        cts: Timestamp,
        rfa: &RfaState,
    ) -> Result<()> {
        // Time only the synchronous record-building section: the flush
        // *wait* parks the co-routine and must not be booked as WAL work
        // (the paper's Figure 12 counts instructions, not idle time).
        let gsn = rfa.max_gsn.max(self.gsn.load(Ordering::Acquire));
        let (lsn, n) = {
            let _t = self.metrics.timer(Component::Wal);
            self.writers[slot].append(xid, Gsn(gsn), RecordBody::Commit { cts })
        };
        self.metrics.add(Counter::WalBytes, n as u64);
        if !self.sync {
            return Ok(());
        }
        // Ring the doorbell *before* parking so the flusher starts a round
        // for this commit rather than waiting out the group-commit window.
        self.doorbell.ring();
        if rfa.needs_remote {
            self.metrics.incr(Counter::RemoteFlushWaits);
            // Own slot first: RFA only relaxes which *remote* logs a
            // commit waits on, never its own — the commit record itself
            // must be durable before acknowledging. The global horizon
            // can already cover `rfa.max_gsn` from earlier rounds while
            // this record still sits in the volatile buffer.
            self.writers[slot].wait_lsn(lsn).await?;
            let wait_start = self.metrics.tracer().span_begin();
            let waited = self.ensure_durable_gsn_async(rfa.max_gsn).await;
            self.metrics.tracer().span_end(
                EventKind::RfaRemoteWait,
                slot as u32,
                wait_start,
                rfa.max_gsn,
            );
            waited?;
        } else {
            self.metrics.incr(Counter::RfaEarlyCommits);
            self.writers[slot].wait_lsn(lsn).await?;
        }
        Ok(())
    }

    /// True once the hub refused further durability after a log I/O error.
    pub fn is_halted(&self) -> bool {
        self.halted.load(Ordering::Acquire)
    }

    /// Stop acknowledging durability: a log write or fsync failed, so no
    /// later commit can be proven durable. Wakes every parked waiter so
    /// they observe the flag and error out instead of sleeping forever
    /// on a disk that will never answer.
    fn halt(&self) {
        self.halted.store(true, Ordering::Release);
        for w in &self.writers {
            w.durable.notify_all();
        }
        self.round_done.notify_all();
    }

    /// Flush every writer once, in parallel (one group-commit round).
    /// Returns total bytes flushed.
    pub fn flush_all(&self) -> Result<u64> {
        if self.halted.load(Ordering::Acquire) {
            // After a log I/O failure no later flush can prove anything
            // durable; stealing more bytes would only widen the loss.
            return Err(PhoebeError::WalHalted);
        }
        let round_start = std::time::Instant::now();
        let tracer = self.metrics.tracer();
        let batch_start = tracer.span_begin();
        // Wave 1: steal every writer's pending bytes and submit all the
        // writes at once so the AIO pool overlaps them — draining slots
        // one write+fsync at a time made the round cost scale linearly
        // with the active slot count, which is what commit latency waits on.
        let wave_start = tracer.span_begin();
        let pending: Vec<_> = self
            .writers
            .iter()
            .filter_map(|w| w.submit_pending(&self.aio).map(|p| (w, p)))
            .collect();
        for (_, p) in &pending {
            if let Err(e) = p.write.wait() {
                self.halt();
                return Err(e.into());
            }
        }
        if !pending.is_empty() {
            tracer.span_end(EventKind::FlushWave, 0, wave_start, 1);
        }
        // Wave 2: overlap the fsyncs the same way.
        if self.sync {
            let wave_start = tracer.span_begin();
            let syncs: Vec<_> = pending
                .iter()
                .map(|(w, _)| self.aio.submit(AioRequest::Fsync { file: Arc::clone(&w.file) }))
                .collect();
            for s in &syncs {
                if let Err(e) = s.wait() {
                    self.halt();
                    return Err(e.into());
                }
            }
            if !pending.is_empty() {
                tracer.span_end(EventKind::FlushWave, 0, wave_start, 2);
            }
        }
        let mut total = 0;
        for (w, p) in &pending {
            w.complete_flush(p);
            // Per-writer durability latency: with overlapped I/O every
            // writer's flush effectively costs the whole wave.
            self.metrics
                .record_latency(LatencySite::WalFlush, round_start.elapsed().as_nanos() as u64);
            total += p.len;
        }
        if total > 0 {
            self.metrics.incr(Counter::WalFlushes);
            self.metrics.add(Counter::WalFlushedBytes, total);
            // The whole round is one group-commit window's worth of work.
            self.metrics
                .record_latency(LatencySite::GroupCommit, round_start.elapsed().as_nanos() as u64);
            tracer.span_end(EventKind::GroupCommitBatch, 0, batch_start, total);
        }
        // Wake remote-dependency waiters: the global horizon may have moved
        // even when this round flushed zero bytes (idle writers catch up).
        self.round_done.notify_all();
        Ok(total)
    }

    /// The global durable horizon: every writer has flushed at least this
    /// GSN (writers with nothing pending don't hold it back).
    pub fn durable_gsn(&self) -> u64 {
        self.writers.iter().map(|w| w.durable_horizon()).min().unwrap_or(u64::MAX)
    }

    /// Await global durability of `gsn` (remote-dependency commits).
    ///
    /// Parks on the per-round notification with the same subscribe →
    /// re-check → await discipline as [`WalWriter::wait_lsn`]; spinning at
    /// high urgency here starved the flusher of CPU on small machines.
    ///
    /// Errs with [`PhoebeError::WalHalted`] if the log device failed
    /// before the horizon reached `gsn`.
    pub async fn ensure_durable_gsn_async(&self, gsn: u64) -> Result<()> {
        loop {
            if self.durable_gsn() >= gsn {
                return Ok(());
            }
            if self.halted.load(Ordering::Acquire) {
                return Err(PhoebeError::WalHalted);
            }
            let notified = self.round_done.notified();
            if self.durable_gsn() >= gsn {
                return Ok(());
            }
            if self.halted.load(Ordering::Acquire) {
                return Err(PhoebeError::WalHalted);
            }
            notified.await;
        }
    }

    /// Blocking variant for the buffer pool's write barrier (Steal).
    /// Returns early (without reaching `gsn`) when the hub halted — the
    /// caller's subsequent page write will surface its own I/O error.
    pub fn ensure_durable_gsn_blocking(&self, gsn: u64) {
        while self.durable_gsn() < gsn && !self.halted.load(Ordering::Acquire) {
            self.doorbell.ring();
            std::thread::sleep(Duration::from_micros(50));
        }
    }

    /// Total bytes physically flushed across writers.
    /// Records appended but not yet physically flushed, summed across
    /// writers (LSNs are per-slot record sequence numbers).
    pub fn backlog_records(&self) -> u64 {
        self.writers.iter().map(|w| w.appended_lsn().saturating_sub(w.flushed_lsn())).sum()
    }

    /// How long the flush horizon has been stuck, in nanoseconds.
    ///
    /// Returns 0 while the flushed horizon keeps up with (or advances
    /// toward) the appended horizon; once there is a backlog and the
    /// flushed-LSN sum stops moving between observations, the age grows
    /// until the flusher makes progress again. Telemetry/watchdog
    /// sampling path only — the probe is stateful, so concurrent callers
    /// share one clock (fine: both want the same answer).
    pub fn flush_horizon_age_ns(&self) -> u64 {
        let flushed: u64 = self.writers.iter().map(|w| w.flushed_lsn()).sum();
        let mut probe = self.horizon_probe.lock();
        if self.backlog_records() == 0 {
            // Fully caught up: nothing pending, nothing stuck.
            probe.last_flushed = flushed;
            probe.since = None;
            return 0;
        }
        if flushed > probe.last_flushed || probe.since.is_none() {
            // Progress since last look (or first look at a backlog):
            // restart the stall clock.
            probe.last_flushed = flushed;
            probe.since = Some(Instant::now());
            return 0;
        }
        probe.since.map_or(0, |s| s.elapsed().as_nanos() as u64)
    }

    pub fn total_bytes_flushed(&self) -> u64 {
        self.writers.iter().map(|w| w.bytes_flushed()).sum()
    }

    /// Snapshot of the hub's metrics registry (tests/diagnostics).
    pub fn metrics_snapshot(&self) -> phoebe_common::metrics::MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Stop the flusher (final flush included).
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        // Wake the flusher out of its doorbell wait so shutdown does not
        // stall for a full group-commit window.
        self.doorbell.ring();
        if let Some(t) = self.flusher.lock().take() {
            let _ = t.join();
        }
    }
}

impl Drop for WalHub {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// RAII wrapper kept for API symmetry: a commit that must not return until
/// durable holds one of these.
pub struct CommitGuard;

#[cfg(test)]
mod tests {
    use super::*;
    use phoebe_runtime::block_on;

    fn hub(slots: usize) -> Arc<WalHub> {
        let dir = phoebe_common::KernelConfig::for_tests().data_dir;
        WalHub::new(&dir, slots, 2, Duration::from_micros(100), true, Arc::new(Metrics::new(1)))
            .unwrap()
    }

    fn xid(n: u64) -> Xid {
        Xid::from_start_ts(n)
    }

    #[test]
    fn append_assigns_monotonic_lsns_per_writer() {
        let h = hub(2);
        let a = h.log_op(0, xid(1), 1, RecordBody::Begin);
        let b = h.log_op(0, xid(1), 1, RecordBody::Abort);
        let c = h.log_op(1, xid(2), 1, RecordBody::Begin);
        assert!(b > a);
        assert_eq!(c, Lsn(1), "LSNs are per-writer");
        h.shutdown();
    }

    #[test]
    fn same_slot_writes_never_need_remote_flush() {
        let h = hub(2);
        let mut rfa = RfaState::default();
        let g1 = h.stamp_write(&mut rfa, 0, None, 0);
        let g2 = h.stamp_write(&mut rfa, g1, Some(0), 0);
        assert!(!rfa.needs_remote);
        assert!(g2 >= g1);
        h.shutdown();
    }

    #[test]
    fn cross_slot_unflushed_dependency_sets_remote() {
        let h = hub(2);
        // Slot 1 writes a page (gsn stamped, not yet flushed).
        let mut rfa1 = RfaState::default();
        let g1 = h.stamp_write(&mut rfa1, 0, None, 1);
        h.log_op(1, xid(1), g1, RecordBody::Begin);
        // Slot 0 then modifies the same page before slot 1 flushed.
        let mut rfa0 = RfaState::default();
        let g0 = h.stamp_write(&mut rfa0, g1, Some(1), 0);
        assert!(g0 > g1, "cross-slot write advances the GSN");
        assert!(rfa0.needs_remote);
        h.shutdown();
    }

    #[test]
    fn cross_slot_flushed_dependency_avoids_remote_wait() {
        let h = hub(2);
        let mut rfa1 = RfaState::default();
        let g1 = h.stamp_write(&mut rfa1, 0, None, 1);
        h.log_op(1, xid(1), g1, RecordBody::Begin);
        h.flush_all().unwrap();
        // Now slot 1's version is durable: no remote dependency.
        let mut rfa0 = RfaState::default();
        let _ = h.stamp_write(&mut rfa0, g1, Some(1), 0);
        assert!(!rfa0.needs_remote, "RFA: durable remote writes don't block");
        h.shutdown();
    }

    #[test]
    fn commit_waits_for_own_flush_only_without_remote_deps() {
        let h = hub(2);
        let mut rfa = RfaState::default();
        let g = h.stamp_write(&mut rfa, 0, None, 0);
        h.log_op(0, xid(5), g, RecordBody::Begin);
        block_on(h.commit(0, xid(5), 9, &rfa)).unwrap();
        assert!(h.writer(0).flushed_lsn() >= 2, "commit record durable");
        let snap = h.metrics_snapshot();
        assert_eq!(snap.counter(Counter::RfaEarlyCommits), 1);
        assert_eq!(snap.counter(Counter::RemoteFlushWaits), 0);
        h.shutdown();
    }

    #[test]
    fn remote_dependent_commit_waits_for_global_horizon() {
        let h = hub(2);
        let mut rfa1 = RfaState::default();
        let g1 = h.stamp_write(&mut rfa1, 0, None, 1);
        h.log_op(1, xid(1), g1, RecordBody::Begin);
        let mut rfa0 = RfaState::default();
        let g0 = h.stamp_write(&mut rfa0, g1, Some(1), 0);
        h.log_op(0, xid(2), g0, RecordBody::Begin);
        assert!(rfa0.needs_remote);
        block_on(h.commit(0, xid(2), 9, &rfa0)).unwrap();
        assert!(h.durable_gsn() >= rfa0.max_gsn);
        assert_eq!(h.metrics_snapshot().counter(Counter::RemoteFlushWaits), 1);
        h.shutdown();
    }

    #[test]
    fn flush_all_reports_bytes_and_files_grow() {
        let h = hub(1);
        for i in 0..50 {
            h.log_op(0, xid(i), 1, RecordBody::Commit { cts: i });
        }
        // Either the background flusher or this call drains the buffer.
        h.flush_all().unwrap();
        assert!(h.total_bytes_flushed() > 0);
        h.shutdown();
    }

    #[test]
    fn flush_horizon_age_tracks_stuck_backlog() {
        // A 5 s group-commit window keeps the background flusher asleep
        // for the whole test, so the backlog we append stays unflushed
        // until we drain it explicitly.
        let dir = phoebe_common::KernelConfig::for_tests().data_dir;
        let h = WalHub::new(&dir, 1, 2, Duration::from_secs(5), true, Arc::new(Metrics::new(1)))
            .unwrap();
        assert_eq!(h.backlog_records(), 0);
        assert_eq!(h.flush_horizon_age_ns(), 0, "caught up: no age");

        h.log_op(0, xid(1), 1, RecordBody::Begin);
        h.log_op(0, xid(1), 1, RecordBody::Abort);
        assert_eq!(h.backlog_records(), 2);
        assert_eq!(h.flush_horizon_age_ns(), 0, "first sight of a backlog starts the clock");
        std::thread::sleep(Duration::from_millis(20));
        let age = h.flush_horizon_age_ns();
        assert!(age >= 10_000_000, "stuck horizon must age, got {age} ns");

        h.flush_all().unwrap();
        assert_eq!(h.backlog_records(), 0);
        assert_eq!(h.flush_horizon_age_ns(), 0, "flushing resets the age");
        h.shutdown();
    }

    #[test]
    fn doorbell_commit_beats_the_group_commit_window() {
        // With a 5 s window, a sleeping-flusher design would hold every
        // sync commit for seconds; the doorbell must make it ~one flush.
        let dir = phoebe_common::KernelConfig::for_tests().data_dir;
        let h = WalHub::new(&dir, 1, 2, Duration::from_secs(5), true, Arc::new(Metrics::new(1)))
            .unwrap();
        let mut rfa = RfaState::default();
        let g = h.stamp_write(&mut rfa, 0, None, 0);
        h.log_op(0, xid(7), g, RecordBody::Begin);
        let t0 = std::time::Instant::now();
        block_on(h.commit(0, xid(7), 9, &rfa)).unwrap();
        assert!(
            t0.elapsed() < Duration::from_secs(1),
            "commit took {:?}: flusher still sleeping out the window",
            t0.elapsed()
        );
        let t1 = std::time::Instant::now();
        h.shutdown();
        assert!(t1.elapsed() < Duration::from_secs(1), "shutdown must ring the doorbell");
    }

    #[test]
    fn remote_dependent_commit_parks_until_round_done() {
        // Same low-latency requirement for the ensure_durable_gsn path.
        let dir = phoebe_common::KernelConfig::for_tests().data_dir;
        let h = WalHub::new(&dir, 2, 2, Duration::from_secs(5), true, Arc::new(Metrics::new(1)))
            .unwrap();
        let mut rfa1 = RfaState::default();
        let g1 = h.stamp_write(&mut rfa1, 0, None, 1);
        h.log_op(1, xid(1), g1, RecordBody::Begin);
        let mut rfa0 = RfaState::default();
        let g0 = h.stamp_write(&mut rfa0, g1, Some(1), 0);
        h.log_op(0, xid(2), g0, RecordBody::Begin);
        assert!(rfa0.needs_remote);
        let t0 = std::time::Instant::now();
        block_on(h.commit(0, xid(2), 9, &rfa0)).unwrap();
        assert!(h.durable_gsn() >= rfa0.max_gsn);
        assert!(t0.elapsed() < Duration::from_secs(1), "remote wait took {:?}", t0.elapsed());
        h.shutdown();
    }

    #[test]
    fn durable_gsn_ignores_idle_writers() {
        let h = hub(4);
        let mut rfa = RfaState::default();
        let g = h.stamp_write(&mut rfa, 0, None, 0);
        h.log_op(0, xid(1), g, RecordBody::Begin);
        h.flush_all().unwrap();
        assert!(h.durable_gsn() >= g, "idle writers must not pin the horizon");
        h.shutdown();
    }
}
