//! WAL record format (§8).
//!
//! Records are *logical*: they carry the table, row id and values of the
//! operation, so recovery replays them against a fresh kernel in GSN order.
//! Every record carries its GSN (globally monotone, not unique; the
//! cross-file recovery order) and LSN (strictly monotone within one
//! writer), plus a CRC32 so torn tails are detected and cut off.
//!
//! Wire format: `[len u32][crc32 u32][payload]` with the CRC computed over
//! the payload. The exact bytes are pinned by the golden fixture in
//! `tests/fixtures/wal_records.hex` (see `tests/wal_golden.rs`): changing
//! this layout breaks recovery of logs written by earlier builds, so the
//! fixture test must be updated deliberately, never silently.

use phoebe_common::error::{PhoebeError, Result};
use phoebe_common::ids::{Gsn, Lsn, RowId, TableId, Timestamp, Xid};
use phoebe_storage::schema::Value;

/// The operation a record describes.
#[derive(Debug, Clone, PartialEq)]
pub enum RecordBody {
    Begin,
    Insert { table: TableId, row: RowId, tuple: Vec<Value> },
    Update { table: TableId, row: RowId, delta: Vec<(u16, Value)> },
    Delete { table: TableId, row: RowId },
    Commit { cts: Timestamp },
    Abort,
}

/// One WAL record.
#[derive(Debug, Clone, PartialEq)]
pub struct WalRecord {
    pub xid: Xid,
    pub gsn: Gsn,
    pub lsn: Lsn,
    pub body: RecordBody,
}

// --- CRC32 (IEEE), table-driven; self-contained. ---

fn crc32_table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *entry = c;
        }
        table
    })
}

/// CRC32 (IEEE 802.3) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let table = crc32_table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::I64(x) => {
            out.push(0);
            out.extend_from_slice(&x.to_le_bytes());
        }
        Value::I32(x) => {
            out.push(1);
            out.extend_from_slice(&x.to_le_bytes());
        }
        Value::F64(x) => {
            out.push(2);
            out.extend_from_slice(&x.to_le_bytes());
        }
        Value::Str(s) => {
            out.push(3);
            out.extend_from_slice(&(s.len() as u16).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
    }
}

struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.at + n > self.buf.len() {
            return Err(PhoebeError::corruption("wal record truncated"));
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }
    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }
    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }
    fn value(&mut self) -> Result<Value> {
        Ok(match self.u8()? {
            0 => Value::I64(i64::from_le_bytes(self.take(8)?.try_into().expect("8"))),
            1 => Value::I32(i32::from_le_bytes(self.take(4)?.try_into().expect("4"))),
            2 => Value::F64(f64::from_le_bytes(self.take(8)?.try_into().expect("8"))),
            3 => {
                let n = self.u16()? as usize;
                Value::Str(
                    String::from_utf8(self.take(n)?.to_vec())
                        .map_err(|_| PhoebeError::corruption("non-utf8 wal string"))?,
                )
            }
            t => return Err(PhoebeError::corruption(format!("bad value tag {t}"))),
        })
    }
}

impl WalRecord {
    /// Append the framed record to `out`; returns the frame length.
    pub fn encode_into(&self, out: &mut Vec<u8>) -> usize {
        let mut payload = Vec::with_capacity(64);
        payload.extend_from_slice(&self.xid.raw().to_le_bytes());
        payload.extend_from_slice(&self.gsn.raw().to_le_bytes());
        payload.extend_from_slice(&self.lsn.raw().to_le_bytes());
        match &self.body {
            RecordBody::Begin => payload.push(0),
            RecordBody::Insert { table, row, tuple } => {
                payload.push(1);
                payload.extend_from_slice(&table.raw().to_le_bytes());
                payload.extend_from_slice(&row.raw().to_le_bytes());
                payload.extend_from_slice(&(tuple.len() as u16).to_le_bytes());
                for v in tuple {
                    put_value(&mut payload, v);
                }
            }
            RecordBody::Update { table, row, delta } => {
                payload.push(2);
                payload.extend_from_slice(&table.raw().to_le_bytes());
                payload.extend_from_slice(&row.raw().to_le_bytes());
                payload.extend_from_slice(&(delta.len() as u16).to_le_bytes());
                for (col, v) in delta {
                    payload.extend_from_slice(&col.to_le_bytes());
                    put_value(&mut payload, v);
                }
            }
            RecordBody::Delete { table, row } => {
                payload.push(3);
                payload.extend_from_slice(&table.raw().to_le_bytes());
                payload.extend_from_slice(&row.raw().to_le_bytes());
            }
            RecordBody::Commit { cts } => {
                payload.push(4);
                payload.extend_from_slice(&cts.to_le_bytes());
            }
            RecordBody::Abort => payload.push(5),
        }
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        8 + payload.len()
    }

    /// Decode one framed record at `buf[at..]`. Returns the record and the
    /// next offset, or `Ok(None)` at a clean/torn end of log.
    pub fn decode_at(buf: &[u8], at: usize) -> Result<Option<(WalRecord, usize)>> {
        if at + 8 > buf.len() {
            return Ok(None);
        }
        let len = u32::from_le_bytes(buf[at..at + 4].try_into().expect("4")) as usize;
        let crc = u32::from_le_bytes(buf[at + 4..at + 8].try_into().expect("4"));
        if len == 0 || at + 8 + len > buf.len() {
            return Ok(None); // torn tail
        }
        let payload = &buf[at + 8..at + 8 + len];
        if crc32(payload) != crc {
            return Ok(None); // torn/corrupt tail: stop replay here
        }
        let mut c = Cursor { buf: payload, at: 0 };
        let xid = Xid::from_raw(c.u64()?)
            .ok_or_else(|| PhoebeError::corruption("record xid missing flag bit"))?;
        let gsn = Gsn(c.u64()?);
        let lsn = Lsn(c.u64()?);
        let body = match c.u8()? {
            0 => RecordBody::Begin,
            1 => {
                let table = TableId(c.u32()?);
                let row = RowId(c.u64()?);
                let n = c.u16()? as usize;
                let tuple = (0..n).map(|_| c.value()).collect::<Result<Vec<_>>>()?;
                RecordBody::Insert { table, row, tuple }
            }
            2 => {
                let table = TableId(c.u32()?);
                let row = RowId(c.u64()?);
                let n = c.u16()? as usize;
                let mut delta = Vec::with_capacity(n);
                for _ in 0..n {
                    let col = c.u16()?;
                    delta.push((col, c.value()?));
                }
                RecordBody::Update { table, row, delta }
            }
            3 => RecordBody::Delete { table: TableId(c.u32()?), row: RowId(c.u64()?) },
            4 => RecordBody::Commit { cts: c.u64()? },
            5 => RecordBody::Abort,
            t => return Err(PhoebeError::corruption(format!("bad record tag {t}"))),
        };
        Ok(Some((WalRecord { xid, gsn, lsn, body }, at + 8 + len)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(body: RecordBody) -> WalRecord {
        WalRecord { xid: Xid::from_start_ts(10), gsn: Gsn(5), lsn: Lsn(2), body }
    }

    #[test]
    fn crc32_known_vector() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn all_record_kinds_roundtrip() {
        let records = vec![
            rec(RecordBody::Begin),
            rec(RecordBody::Insert {
                table: TableId(3),
                row: RowId(44),
                tuple: vec![
                    Value::I64(-5),
                    Value::I32(7),
                    Value::F64(1.5),
                    Value::Str("hello".into()),
                ],
            }),
            rec(RecordBody::Update {
                table: TableId(3),
                row: RowId(44),
                delta: vec![(0, Value::I64(9)), (3, Value::Str("x".into()))],
            }),
            rec(RecordBody::Delete { table: TableId(3), row: RowId(44) }),
            rec(RecordBody::Commit { cts: 77 }),
            rec(RecordBody::Abort),
        ];
        let mut buf = Vec::new();
        for r in &records {
            r.encode_into(&mut buf);
        }
        let mut at = 0;
        for r in &records {
            let (got, next) = WalRecord::decode_at(&buf, at).unwrap().expect("record");
            assert_eq!(&got, r);
            at = next;
        }
        assert_eq!(WalRecord::decode_at(&buf, at).unwrap(), None, "clean end");
    }

    #[test]
    fn torn_tail_stops_replay_without_error() {
        let mut buf = Vec::new();
        rec(RecordBody::Begin).encode_into(&mut buf);
        rec(RecordBody::Commit { cts: 1 }).encode_into(&mut buf);
        // Cut the second record short.
        let cut = buf.len() - 3;
        let (first, next) = WalRecord::decode_at(&buf[..cut], 0).unwrap().unwrap();
        assert_eq!(first.body, RecordBody::Begin);
        assert_eq!(WalRecord::decode_at(&buf[..cut], next).unwrap(), None);
    }

    #[test]
    fn bit_flip_is_caught_by_crc() {
        let mut buf = Vec::new();
        rec(RecordBody::Commit { cts: 1 }).encode_into(&mut buf);
        buf[12] ^= 0x01; // flip a payload bit
        assert_eq!(WalRecord::decode_at(&buf, 0).unwrap(), None);
    }
}
