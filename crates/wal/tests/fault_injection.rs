//! WAL-layer fault injection: the hub over a [`SimFs`] torture disk.
//!
//! These tests pin the durability contract at its narrowest point — the
//! hub itself, no kernel above it: a commit acknowledgment means the
//! transaction's records survive any crash that happens afterwards, and
//! once the log device fails, commits error with `WalHalted` instead of
//! acknowledging.

use phoebe_common::error::PhoebeError;
use phoebe_common::fault::{FaultConfig, SimFs};
use phoebe_common::ids::{RowId, TableId, Xid};
use phoebe_common::metrics::Metrics;
use phoebe_common::KernelConfig;
use phoebe_runtime::block_on;
use phoebe_storage::schema::Value;
use phoebe_wal::{recover_dir, RecordBody, RfaState, WalHub};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

fn hub_over(fs: Arc<SimFs>, dir: &std::path::Path, slots: usize) -> Arc<WalHub> {
    WalHub::with_fs(dir, slots, 2, Duration::from_micros(50), true, Arc::new(Metrics::new(1)), fs)
        .unwrap()
}

/// Acked commits survive a crash: hammer the hub from several slots,
/// freeze the disk mid-flight, then recover from the durable image and
/// check every acknowledged transaction is present.
#[test]
fn acked_commits_survive_crash() {
    for seed in 0..24u64 {
        let dir = KernelConfig::for_tests().data_dir;
        let sim = SimFs::new(FaultConfig::crash_only(seed));
        let hub = hub_over(Arc::clone(&sim), &dir, 4);
        let acked: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        let next_xid = Arc::new(AtomicU64::new(1));

        let workers: Vec<_> = (0..4usize)
            .map(|slot| {
                let hub = Arc::clone(&hub);
                let acked = Arc::clone(&acked);
                let next_xid = Arc::clone(&next_xid);
                std::thread::spawn(move || {
                    loop {
                        let x = next_xid.fetch_add(1, Ordering::Relaxed);
                        if x > 10_000 {
                            return;
                        }
                        let xid = Xid::from_start_ts(x);
                        let mut rfa = RfaState::default();
                        let gsn = hub.stamp_write(&mut rfa, 0, None, slot);
                        // Odd transactions also claim a cross-slot
                        // dependency on the current global GSN, driving
                        // the remote-wait commit path.
                        if x % 2 == 1 {
                            rfa.needs_remote = true;
                            rfa.max_gsn = rfa.max_gsn.max(hub.current_gsn());
                        }
                        hub.log_op(slot, xid, gsn, RecordBody::Begin);
                        hub.log_op(
                            slot,
                            xid,
                            gsn,
                            RecordBody::Insert {
                                table: TableId(1),
                                row: RowId(x),
                                tuple: vec![Value::I64(x as i64)],
                            },
                        );
                        match block_on(hub.commit(slot, xid, x, &rfa)) {
                            Ok(()) => acked.lock().unwrap().push(x),
                            Err(_) => return,
                        }
                    }
                })
            })
            .collect();

        // Let some commits through, then pull the plug.
        std::thread::sleep(Duration::from_millis(20));
        sim.crash();
        for w in workers {
            w.join().unwrap();
        }
        hub.shutdown();

        let committed: std::collections::HashSet<u64> =
            recover_dir(&dir).unwrap().iter().map(|t| t.xid.start_ts()).collect();
        let acked = acked.lock().unwrap();
        for x in acked.iter() {
            assert!(
                committed.contains(x),
                "seed {seed}: acked xid {x} missing from the durable image \
                 ({} acked, {} recovered)",
                acked.len(),
                committed.len(),
            );
        }
    }
}

/// After the disk dies, a commit must fail with `WalHalted` — never hang,
/// never acknowledge.
#[test]
fn commit_after_crash_returns_wal_halted() {
    let dir = KernelConfig::for_tests().data_dir;
    let sim = SimFs::new(FaultConfig::crash_only(7));
    let hub = hub_over(Arc::clone(&sim), &dir, 1);

    let xid = Xid::from_start_ts(1);
    hub.log_op(0, xid, 1, RecordBody::Begin);
    block_on(hub.commit(0, xid, 1, &RfaState::default())).unwrap();

    sim.crash();
    let xid2 = Xid::from_start_ts(2);
    hub.log_op(0, xid2, 2, RecordBody::Begin);
    let err = block_on(hub.commit(0, xid2, 2, &RfaState::default())).unwrap_err();
    assert!(matches!(err, PhoebeError::WalHalted), "got {err:?}");
    assert!(hub.is_halted());
    // The pre-crash commit is still in the durable image.
    hub.shutdown();
    assert_eq!(recover_dir(&dir).unwrap().len(), 1);
}

/// `flush_all` + the durable-GSN barrier form a real durability line:
/// once `ensure_durable_gsn_blocking` returns for a GSN, a crash cannot
/// lose records at or below it.
#[test]
fn durable_gsn_barrier_survives_crash() {
    for seed in 100..110u64 {
        let dir = KernelConfig::for_tests().data_dir;
        let sim = SimFs::new(FaultConfig::crash_only(seed));
        let hub = hub_over(Arc::clone(&sim), &dir, 2);

        // Two committed transactions on different slots.
        for (slot, x) in [(0u64, 1u64), (1, 2)] {
            let xid = Xid::from_start_ts(x);
            let mut rfa = RfaState::default();
            let gsn = hub.stamp_write(&mut rfa, 0, None, slot as usize);
            hub.log_op(slot as usize, xid, gsn, RecordBody::Begin);
            block_on(hub.commit(slot as usize, xid, x * 10, &rfa)).unwrap();
        }
        let barrier_gsn = hub.current_gsn();
        hub.ensure_durable_gsn_blocking(barrier_gsn);
        assert!(hub.durable_gsn() >= barrier_gsn);

        // Volatile tail after the barrier, then crash.
        let xid = Xid::from_start_ts(3);
        hub.log_op(0, xid, barrier_gsn + 1, RecordBody::Begin);
        sim.crash();
        hub.shutdown();

        let recovered = recover_dir(&dir).unwrap();
        assert_eq!(
            recovered.len(),
            2,
            "seed {seed}: both barrier-covered transactions must survive"
        );
        assert!(recovered.iter().all(|t| t.max_gsn <= barrier_gsn));
    }
}
